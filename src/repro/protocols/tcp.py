"""TCP: a BSD-structured implementation over the x-kernel framework.

Feature set (everything the ping-pong evaluation and the paper's fast-path
discussion touch, implemented for real):

* three-way handshake (active and passive open), FIN teardown,
* byte-exact 20-byte headers with the pseudo-header checksum,
* sequence/ACK bookkeeping with an out-of-order reassembly queue,
* retransmission timer with a real unacked-data buffer,
* delayed ACKs (piggybacked whenever the application replies promptly),
* slow start / congestion avoidance with the Section 2.2.2 fast path:
  when ``avoid_division`` is on, a fully-open congestion window skips the
  multiply/divide entirely, and the window-update threshold is computed as
  ~33 % with shifts and adds instead of 35 % with a multiply and the
  division library routine,
* demultiplexing through an x-kernel map (one-entry cache), which also
  serves timer traversal via the lazy non-empty-bucket chain — the
  separate BSD list of open connections is gone (Section 2.2.1).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.protocols.ip import PROTO_TCP, internet_checksum
from repro.protocols.options import Section2Options
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol, ProtocolStack, Session, XkernelError

TCP_HEADER = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

# connection states
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"

DEFAULT_MSS = 1460
DEFAULT_WINDOW = 16 * 1024
REXMT_TIMEOUT_US = 1_000_000.0
DELACK_TIMEOUT_US = 200_000.0
SLOWTIMO_US = 500_000.0


def _words(nbytes: int) -> int:
    return max(1, (nbytes + 7) // 8)


def _seq_lt(a: int, b: int) -> bool:
    return ((a - b) & 0xFFFFFFFF) > 0x7FFFFFFF


def _seq_gt(a: int, b: int) -> bool:
    return a != b and not _seq_lt(a, b)


class TcpSession(Session):
    """A connection's control block (TCB)."""

    def __init__(self, protocol: "TcpProtocol", upper: Protocol,
                 local_port: int, remote_port: int, remote_ip: bytes) -> None:
        super().__init__(protocol, state_size=256, upper=upper)
        self.local_port = local_port
        self.remote_port = remote_port
        self.remote_ip = remote_ip
        self.state = CLOSED
        iss = (self.session_id * 64021 + 7) & 0xFFFFFFFF
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.snd_wnd = DEFAULT_WINDOW
        self.max_window = DEFAULT_WINDOW
        self.rcv_nxt = 0
        self.rcv_wnd = DEFAULT_WINDOW
        self.rcv_adv = 0          # highest window edge advertised
        self.mss = DEFAULT_MSS
        self.cwnd = DEFAULT_MSS
        self.ssthresh = 64 * 1024
        self.srtt_us = 0.0
        self.rexmt_event = None
        self.delack_event = None
        self.unacked = b""        # bytes in flight [snd_una, snd_nxt)
        self.send_queue = b""     # enqueued by the app, not yet on the wire
        self.reass: Dict[int, bytes] = {}
        self.ip_session = None    # set by the protocol
        self.stats_segments_in = 0
        self.stats_segments_out = 0
        self.stats_retransmits = 0

    @property
    def cwnd_fully_open(self) -> bool:
        return self.cwnd >= self.snd_wnd

    @property
    def effective_window(self) -> int:
        """Bytes the sender may have outstanding: min(cwnd, peer window)."""
        return min(self.cwnd, self.snd_wnd)

    @property
    def in_flight(self) -> int:
        return len(self.unacked)

    def key(self) -> bytes:
        return struct.pack("!HH4s", self.local_port, self.remote_port,
                           self.remote_ip)


class TcpProtocol(Protocol):
    """TCP over IP, with passive and active opens."""

    def __init__(self, stack: ProtocolStack, *,
                 arp: Optional[Dict[bytes, bytes]] = None,
                 opts: Optional[Section2Options] = None) -> None:
        super().__init__(stack, "tcp", state_size=512)
        self.opts = opts or Section2Options.improved()
        self.pcb_map = self.new_map(64)
        self.listeners: Dict[int, Protocol] = {}
        self.arp = arp or {}
        self.local_ip: Optional[bytes] = None  # set once IP is wired
        self.slowtimo_runs = 0

    # ------------------------------------------------------------------ #
    # control                                                            #
    # ------------------------------------------------------------------ #

    def _ip(self):
        return self.lower

    def open(self, upper: Protocol, participants) -> TcpSession:
        """Active open: (local_port, remote_port, remote_ip)."""
        local_port, remote_port, remote_ip = participants
        session = self._make_session(upper, local_port, remote_port, remote_ip)
        session.state = SYN_SENT
        self._send_segment(session, FLAG_SYN, seq=session.snd_nxt)
        session.snd_nxt = (session.snd_nxt + 1) & 0xFFFFFFFF
        session.unacked = b""
        self._arm_rexmt(session)
        return session

    def open_enable(self, upper: Protocol, pattern) -> None:
        """Passive open on a local port."""
        port = pattern
        if port in self.listeners:
            raise XkernelError(f"port {port} already has a listener")
        self.listeners[port] = upper

    def _make_session(self, upper: Protocol, local_port: int,
                      remote_port: int, remote_ip: bytes) -> TcpSession:
        session = TcpSession(self, upper, local_port, remote_port, remote_ip)
        mac = self.arp.get(remote_ip)
        if mac is None:
            raise XkernelError(f"no route to {remote_ip.hex()}")
        session.ip_session = self._ip().open(self, (remote_ip, PROTO_TCP, mac))
        session.rcv_adv = session.rcv_nxt + session.rcv_wnd
        self.pcb_map.bind(session.key(), session)
        return session

    def close(self, session: TcpSession) -> None:
        """Initiate teardown (send FIN)."""
        if session.state == ESTABLISHED:
            session.state = FIN_WAIT_1
        elif session.state == CLOSE_WAIT:
            session.state = LAST_ACK
        else:
            raise XkernelError(f"close in state {session.state}")
        self._send_segment(session, FLAG_FIN | FLAG_ACK, seq=session.snd_nxt,
                           ack=session.rcv_nxt)
        session.snd_nxt = (session.snd_nxt + 1) & 0xFFFFFFFF
        self._arm_rexmt(session)

    # ------------------------------------------------------------------ #
    # window computations: the Section 2.2.2 arithmetic                  #
    # ------------------------------------------------------------------ #

    def window_update_threshold(self, session: TcpSession) -> int:
        """Receiver-side silly-window threshold.

        35 % of the maximum window with multiply/divide, or ~33 % with a
        shift-and-add when ``avoid_division`` is on.  The paper notes the
        change does not affect TCP's operational behaviour noticeably.
        """
        w = session.max_window
        if self.opts.avoid_division:
            return (w >> 2) + (w >> 4)  # 31.25 %
        return w * 35 // 100

    def _window_update_due(self, session: TcpSession) -> bool:
        pending = session.rcv_nxt + session.rcv_wnd - session.rcv_adv
        return pending >= self.window_update_threshold(session)

    def _open_cwnd(self, session: TcpSession) -> bool:
        """Grow the congestion window on a good ACK.

        Returns True when the fully-open fast path was taken (no math).
        """
        if self.opts.avoid_division and session.cwnd_fully_open:
            return True
        if session.cwnd < session.ssthresh:
            session.cwnd += session.mss  # slow start
        else:
            session.cwnd += max(1, session.mss * session.mss // session.cwnd)
        session.cwnd = min(session.cwnd, 2 * session.max_window)
        return False

    # ------------------------------------------------------------------ #
    # segment construction                                               #
    # ------------------------------------------------------------------ #

    def _build_header(self, session: TcpSession, flags: int, seq: int,
                      ack: int, payload: bytes) -> bytes:
        window = session.rcv_wnd
        hdr = struct.pack(
            "!HHIIBBHHH",
            session.local_port, session.remote_port, seq, ack,
            (5 << 4), flags, window, 0, 0,
        )
        pseudo = struct.pack(
            "!4s4sBBH", self.local_ip, session.remote_ip, 0, PROTO_TCP,
            len(hdr) + len(payload),
        )
        cksum = internet_checksum(pseudo + hdr + payload)
        return hdr[:16] + struct.pack("!H", cksum) + hdr[18:]

    def _send_segment(self, session: TcpSession, flags: int, *, seq: int,
                      ack: int = 0, payload: bytes = b"",
                      retransmit: bool = False) -> None:
        hdr = self._build_header(session, flags, seq, ack, payload)
        msg = Message(self.allocator, payload)
        msg.push(hdr)
        session.stats_segments_out += 1
        if retransmit:
            session.stats_retransmits += 1
        if flags & FLAG_ACK:
            session.rcv_adv = session.rcv_nxt + session.rcv_wnd
        session.ip_session.push(msg)
        msg.destroy()

    # ------------------------------------------------------------------ #
    # output path (xPush)                                                #
    # ------------------------------------------------------------------ #

    def push(self, session: TcpSession, msg: Message) -> None:
        if session.state != ESTABLISHED:
            raise XkernelError(f"push in state {session.state}")
        payload = msg.bytes()
        seg_len = TCP_HEADER + len(payload) + 12  # + pseudo header
        conds = {
            "snd_wnd_zero": session.snd_wnd == 0,
            "cwnd_open": session.cwnd_fully_open,
            "is_retransmit": False,
            "window_update_due": self._window_update_due(session),
            "rexmt_pending": session.rexmt_event is not None,
            "delack_pending": session.delack_event is not None,
            "must_probe": False,
            "in_cksum.words": [_words(seg_len)],
            "msg_push.underflow": False,
            "event_cancel.already_fired": False,
            "div_helper.steps": 3,
        }
        data = {
            "tcb": session.sim_addr,
            "msg": msg.sim_addr,
            "ckbuf": msg.data_addr,
        }
        with self.tracer.scope("tcp_push", conds, data):
            self._do_send_data(session, msg, payload)

    def _do_send_data(self, session: TcpSession, msg: Message,
                      payload: bytes) -> None:
        seq = session.snd_nxt
        session.snd_nxt = (session.snd_nxt + len(payload)) & 0xFFFFFFFF
        session.unacked += payload
        hdr = self._build_header(session, FLAG_ACK | FLAG_PSH, seq,
                                 session.rcv_nxt, payload)
        msg.push(hdr)
        session.stats_segments_out += 1
        session.rcv_adv = session.rcv_nxt + session.rcv_wnd
        # restart the retransmit timer; the ACK we carry supersedes any
        # pending delayed ACK
        if session.rexmt_event is not None:
            self.stack.events.cancel(session.rexmt_event)
        self._arm_rexmt(session)
        if session.delack_event is not None:
            self.stack.events.cancel(session.delack_event)
            session.delack_event = None
        session.ip_session.push(msg)

    # ------------------------------------------------------------------ #
    # bulk transfer (throughput path)                                    #
    # ------------------------------------------------------------------ #

    def send_stream(self, session: TcpSession, data: bytes) -> None:
        """Enqueue bulk data; segments flow as the window allows.

        This is the throughput-oriented entry point the paper's
        "techniques do not hurt throughput" verification needs: data is
        cut into MSS-sized segments and kept ``min(cwnd, snd_wnd)`` bytes
        in flight, with ACK arrivals pumping out more.
        """
        if session.state != ESTABLISHED:
            raise XkernelError(f"send_stream in state {session.state}")
        session.send_queue += data
        self._pump(session)

    def _pump(self, session: TcpSession) -> None:
        """Transmit queued segments up to the effective window."""
        while session.send_queue:
            room = session.effective_window - session.in_flight
            if room < min(len(session.send_queue), 1):
                break
            take = min(session.mss, len(session.send_queue), max(room, 1))
            payload = session.send_queue[:take]
            session.send_queue = session.send_queue[take:]
            msg = Message(self.allocator, payload)
            self._do_send_data(session, msg, payload)
            msg.destroy()

    # ------------------------------------------------------------------ #
    # timers                                                             #
    # ------------------------------------------------------------------ #

    def _arm_rexmt(self, session: TcpSession) -> None:
        session.rexmt_event = self.stack.events.schedule(
            REXMT_TIMEOUT_US, lambda: self._rexmt_timeout(session)
        )

    def _rexmt_timeout(self, session: TcpSession) -> None:
        session.rexmt_event = None
        if session.state in (CLOSED, TIME_WAIT):
            return
        # classic multiplicative decrease then retransmit from snd_una
        session.ssthresh = max(2 * session.mss, session.snd_wnd // 2)
        session.cwnd = session.mss
        if session.state == SYN_SENT:
            self._send_segment(session, FLAG_SYN, seq=session.iss,
                               retransmit=True)
        elif session.unacked:
            self._send_segment(
                session, FLAG_ACK | FLAG_PSH, seq=session.snd_una,
                ack=session.rcv_nxt, payload=session.unacked[:session.mss],
                retransmit=True,
            )
        self._arm_rexmt(session)

    def _delack_timeout(self, session: TcpSession) -> None:
        session.delack_event = None
        if session.state == ESTABLISHED:
            self._send_segment(session, FLAG_ACK, seq=session.snd_nxt,
                               ack=session.rcv_nxt)

    def slowtimo(self) -> int:
        """The 500 ms slow timer: visit every connection.

        BSD keeps a separate list of open connections for this; the
        improved x-kernel traverses the demux map's non-empty-bucket chain
        instead (Section 2.2.1).  Returns the number of connections seen.
        """
        self.slowtimo_runs += 1
        count = 0
        for _key, session in self.pcb_map.traverse():
            count += 1
            if session.state == TIME_WAIT:
                self._drop(session)
        return count

    # ------------------------------------------------------------------ #
    # input path (xDemux)                                                #
    # ------------------------------------------------------------------ #

    def demux(self, msg: Message, *, src: bytes, dst: bytes, **kwargs) -> None:
        raw = msg.peek(TCP_HEADER)
        (sport, dport, seq, ack, off, flags, wnd, _cksum,
         _urp) = struct.unpack("!HHIIBBHHH", raw)
        payload = msg.bytes()[TCP_HEADER:]
        pseudo = struct.pack("!4s4sBBH", src, dst, 0, PROTO_TCP, len(msg))
        cksum_ok = internet_checksum(pseudo + msg.bytes()) == 0

        key = struct.pack("!HH4s", dport, sport, src)
        cache_hit = self.pcb_map.cache_would_hit(key)
        session = self.pcb_map.resolve_or_none(key)
        established = session is not None and session.state == ESTABLISHED

        seq_expected = session is not None and seq == session.rcv_nxt
        ack_advances = (
            session is not None
            and bool(flags & FLAG_ACK)
            and _seq_gt(ack, session.snd_una)
        )
        more_unacked = (
            session is not None and ack_advances
            and _seq_lt(ack, session.snd_nxt)
        )
        data_present = len(payload) > 0
        conds = {
            "cksum_ok": cksum_ok,
            "map_cache_hit": cache_hit,
            "map_resolve.cache_hit": cache_hit,
            "map_resolve.key_words": 2,
            "established": established,
            "seq_expected": seq_expected,
            "ack_advances": ack_advances,
            "more_unacked": more_unacked,
            "cwnd_open": session.cwnd_fully_open if session else True,
            "window_update_due": (
                self._window_update_due(session) if session else False
            ),
            "data_present": data_present,
            "fin": bool(flags & FLAG_FIN),
            # a prompt reply will piggyback; the delayed ACK is armed when
            # data arrived and nothing was sent in response yet
            "delack_needed": data_present,
            "msg_pop.underflow": False,
            "event_cancel.already_fired": False,
            "div_helper.steps": 3,
            "in_cksum.words": [_words(len(msg) + 12)],
            "malloc.free_list_hit": self.allocator.would_reuse(2048),
        }
        data = {
            "tcb": session.sim_addr if session else self.sim_addr,
            "map": self.pcb_map.sim_addr,
            "msg": msg.sim_addr,
            "ckbuf": msg.data_addr,
        }
        with self.tracer.scope("tcp_demux", conds, data):
            if not cksum_ok:
                return
            if session is None:
                self._no_session(msg, src, sport, dport, seq, flags)
                return
            session.stats_segments_in += 1
            session.snd_wnd = wnd
            self._input(session, msg, seq, ack, flags, payload)

    def _no_session(self, msg: Message, src: bytes, sport: int, dport: int,
                    seq: int, flags: int) -> None:
        """Segment for no established connection: maybe a passive open."""
        upper = self.listeners.get(dport)
        if upper is None or not flags & FLAG_SYN:
            return  # would send RST; the test network never needs one
        session = self._make_session(upper, dport, sport, src)
        session.state = SYN_RCVD
        session.rcv_nxt = (seq + 1) & 0xFFFFFFFF
        self._send_segment(session, FLAG_SYN | FLAG_ACK, seq=session.snd_nxt,
                           ack=session.rcv_nxt)
        session.snd_nxt = (session.snd_nxt + 1) & 0xFFFFFFFF
        self._arm_rexmt(session)

    def _input(self, session: TcpSession, msg: Message, seq: int, ack: int,
               flags: int, payload: bytes) -> None:
        state = session.state

        # --- handshake transitions ---
        if state == SYN_SENT and flags & FLAG_SYN and flags & FLAG_ACK:
            session.rcv_nxt = (seq + 1) & 0xFFFFFFFF
            session.snd_una = ack
            session.state = ESTABLISHED
            self._cancel_rexmt(session)
            self._send_segment(session, FLAG_ACK, seq=session.snd_nxt,
                               ack=session.rcv_nxt)
            self._notify_open(session)
            return
        if state == SYN_RCVD and flags & FLAG_ACK and ack == session.snd_nxt:
            session.snd_una = ack
            session.state = ESTABLISHED
            self._cancel_rexmt(session)
            self._notify_open(session)
            if not payload:
                return
            # fall through: the ACK may carry data

        if session.state not in (ESTABLISHED, FIN_WAIT_1, CLOSE_WAIT,
                                 LAST_ACK):
            return

        # --- ACK processing ---
        if flags & FLAG_ACK and _seq_gt(ack, session.snd_una):
            acked = (ack - session.snd_una) & 0xFFFFFFFF
            session.unacked = session.unacked[acked:]
            session.snd_una = ack
            self._rtt_sample(session)
            self._cancel_rexmt(session)
            if session.unacked:
                self._arm_rexmt(session)
            self._open_cwnd(session)
            if session.send_queue:
                self._pump(session)  # the freed window carries more data
            if session.state == FIN_WAIT_1 and ack == session.snd_nxt:
                session.state = TIME_WAIT
            if session.state == LAST_ACK and ack == session.snd_nxt:
                self._drop(session)
                return

        # --- data ---
        delivered = False
        if payload:
            if seq == session.rcv_nxt:
                session.rcv_nxt = (session.rcv_nxt + len(payload)) & 0xFFFFFFFF
                self._drain_reassembly(session)
                msg.pop(TCP_HEADER)
                delivered = True
                if session.upper is not None:
                    session.upper.demux(msg, session=session)
            elif _seq_gt(seq, session.rcv_nxt):
                session.reass[seq] = payload  # out of order: queue it

        # --- window update / delayed ACK ---
        if self._window_update_due(session):
            self._send_segment(session, FLAG_ACK, seq=session.snd_nxt,
                               ack=session.rcv_nxt)
        elif delivered and session.delack_event is not None:
            # BSD's ack-every-second-segment rule: a delayed ACK was
            # already pending, so acknowledge both segments now — this is
            # what keeps a bulk sender's ACK clock ticking
            self.stack.events.cancel(session.delack_event)
            session.delack_event = None
            self._send_segment(session, FLAG_ACK, seq=session.snd_nxt,
                               ack=session.rcv_nxt)
        elif delivered and session.delack_event is None:
            session.delack_event = self.stack.events.schedule(
                DELACK_TIMEOUT_US, lambda: self._delack_timeout(session)
            )

        # --- FIN ---
        if flags & FLAG_FIN:
            session.rcv_nxt = (session.rcv_nxt + 1) & 0xFFFFFFFF
            self._send_segment(session, FLAG_ACK, seq=session.snd_nxt,
                               ack=session.rcv_nxt)
            if session.state == ESTABLISHED:
                session.state = CLOSE_WAIT
            elif session.state in (FIN_WAIT_1, TIME_WAIT):
                session.state = TIME_WAIT

    # ------------------------------------------------------------------ #
    # helpers                                                            #
    # ------------------------------------------------------------------ #

    def _drain_reassembly(self, session: TcpSession) -> None:
        while session.rcv_nxt in session.reass:
            payload = session.reass.pop(session.rcv_nxt)
            session.rcv_nxt = (session.rcv_nxt + len(payload)) & 0xFFFFFFFF
            if session.upper is not None:
                queued = Message(self.allocator, payload)
                session.upper.demux(queued, session=session)
                queued.destroy()

    def _rtt_sample(self, session: TcpSession) -> None:
        # coarse SRTT bookkeeping (enough for the model's rtt block)
        sample = 1000.0
        if session.srtt_us:
            session.srtt_us += (sample - session.srtt_us) / 8.0
        else:
            session.srtt_us = sample

    def _cancel_rexmt(self, session: TcpSession) -> None:
        if session.rexmt_event is not None:
            self.stack.events.cancel(session.rexmt_event)
            session.rexmt_event = None

    def _notify_open(self, session: TcpSession) -> None:
        upper = session.upper
        if upper is not None and hasattr(upper, "connection_established"):
            upper.connection_established(session)

    def _drop(self, session: TcpSession) -> None:
        self._cancel_rexmt(session)
        if session.delack_event is not None:
            self.stack.events.cancel(session.delack_event)
            session.delack_event = None
        if session.state != CLOSED:
            session.state = CLOSED
            self.pcb_map.unbind(session.key())

    @property
    def open_connections(self) -> int:
        return sum(1 for _ in self.pcb_map.traverse())
