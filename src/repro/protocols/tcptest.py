"""TCPTEST: the ping-pong latency test program (top of Figure 1, left).

The client thread loops: send one byte, block until the echo arrives,
repeat.  Blocking and resumption go through the process layer's semaphore
and continuation machinery, so the receive side's ``sem_signal`` and the
(untraced) context switch happen exactly where the paper places them.
The server echoes each byte from a shepherd-scheduled callback.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.protocols.options import Section2Options
from repro.protocols.tcp import TcpProtocol, TcpSession
from repro.xkernel.message import Message
from repro.xkernel.process import Continuation, Semaphore
from repro.xkernel.protocol import Protocol, ProtocolStack, XkernelError

PING_BYTE = b"!"


class TcpTestClient(Protocol):
    """Ping-pong client: sends 1-byte messages, waits for 1-byte echoes."""

    def __init__(self, stack: ProtocolStack, tcp: TcpProtocol, *,
                 local_port: int, remote_port: int, remote_ip: bytes,
                 opts: Optional[Section2Options] = None) -> None:
        super().__init__(stack, "tcptest", state_size=128)
        self.opts = opts or Section2Options.improved()
        self.tcp = tcp
        self.participants = (local_port, remote_port, remote_ip)
        self.session: Optional[TcpSession] = None
        self.reply_sem = Semaphore(stack.scheduler, name="tcptest-reply")
        self.sem_addr = stack.allocator.malloc(96)
        self.connected = False
        self.pings_sent = 0
        self.replies = 0
        self.remaining = 0
        self.on_done: Optional[Callable[[], None]] = None

    # ---- connection management ---- #

    def connect(self) -> None:
        self.session = self.tcp.open(self, self.participants)

    def connection_established(self, session: TcpSession) -> None:
        self.connected = True

    # ---- the ping-pong loop ---- #

    def run_pingpong(self, roundtrips: int,
                     on_done: Optional[Callable[[], None]] = None) -> None:
        """Start ``roundtrips`` send/wait iterations (event-driven)."""
        if not self.connected:
            raise XkernelError("not connected")
        if roundtrips <= 0:
            raise XkernelError("need at least one roundtrip")
        self.remaining = roundtrips
        self.on_done = on_done
        self._send_one()

    def _send_one(self) -> None:
        conds = {
            "malloc.free_list_hit": self.allocator.would_reuse(2048),
        }
        msg = Message(self.allocator, PING_BYTE)
        data = {"app": self.sim_addr, "msg": msg.sim_addr}
        with self.tracer.scope("tcptest_call", conds, data):
            self.pings_sent += 1
            self.session.push(msg)
        msg.destroy()
        # the thread now blocks awaiting the reply
        self.reply_sem.wait_or_block(
            Continuation(self._on_reply, label="tcptest-wait")
        )

    def _on_reply(self) -> None:
        """The awakened ping-pong thread (after the context switch)."""
        self.remaining -= 1
        if self.remaining > 0:
            self._send_one()
        elif self.on_done is not None:
            self.on_done()

    # ---- delivery from TCP ---- #

    def demux(self, msg: Message, *, session: TcpSession, **kwargs) -> None:
        conds = {
            "signal_waiter": True,
            "sem_signal.waiter_present": self.reply_sem.waiting > 0,
        }
        data = {"app": self.sim_addr, "sem": self.sem_addr,
                "msg": msg.sim_addr}
        with self.tracer.scope("tcptest_demux", conds, data):
            self.replies += len(msg.bytes())  # count echoed bytes
            self.reply_sem.signal()


class TcpTestServer(Protocol):
    """Ping-pong server: echo every received byte."""

    def __init__(self, stack: ProtocolStack, tcp: TcpProtocol, *,
                 local_port: int,
                 opts: Optional[Section2Options] = None) -> None:
        super().__init__(stack, "tcptest", state_size=128)
        self.opts = opts or Section2Options.improved()
        self.tcp = tcp
        tcp.open_enable(self, local_port)
        self.sem_addr = stack.allocator.malloc(96)
        self.echoes = 0

    def connection_established(self, session: TcpSession) -> None:
        pass

    def demux(self, msg: Message, *, session: TcpSession, **kwargs) -> None:
        payload = msg.bytes()
        conds = {"signal_waiter": False}
        data = {"app": self.sim_addr, "sem": self.sem_addr,
                "msg": msg.sim_addr}
        with self.tracer.scope("tcptest_demux", conds, data):
            # hand the echo to the shepherd so it runs outside the
            # delivery scope (mirroring the client's thread structure)
            self.stack.scheduler.call_soon(
                lambda: self._echo(session, payload)
            )

    def _echo(self, session: TcpSession, payload: bytes) -> None:
        conds = {"malloc.free_list_hit": self.allocator.would_reuse(2048)}
        msg = Message(self.allocator, payload)
        data = {"app": self.sim_addr, "msg": msg.sim_addr}
        with self.tracer.scope("tcptest_call", conds, data):
            self.echoes += 1
            session.push(msg)
        msg.destroy()
