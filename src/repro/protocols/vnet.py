"""VNET: the virtual protocol that routes outgoing messages to an adaptor.

In BSD-derived stacks this logic is folded into IP; the x-kernel factors
it into its own (tiny) protocol [OP92].  Its output processing is a pure
pass-through — the paper's example of the useless call overhead that
path-inlining removes for free.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.options import Section2Options
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol, ProtocolStack, Session


class VnetSession(Session):
    def __init__(self, protocol: "VnetProtocol", upper: Protocol,
                 lower_session: Session) -> None:
        super().__init__(protocol, state_size=48, upper=upper)
        self.lower_session = lower_session


class VnetProtocol(Protocol):
    """Route to the (single, on this hardware) network adaptor."""

    def __init__(self, stack: ProtocolStack, *,
                 opts: Optional[Section2Options] = None) -> None:
        super().__init__(stack, "vnet", state_size=96)
        self.opts = opts or Section2Options.improved()

    def open(self, upper: Protocol, participants) -> VnetSession:
        """participants: (dst_mac, ethertype) forwarded to ETH."""
        lower_session = self.lower.open(self, participants)
        return VnetSession(self, upper, lower_session)

    def push(self, session: VnetSession, msg: Message) -> None:
        data = {"vnet": self.sim_addr, "msg": msg.sim_addr}
        with self.tracer.scope("vnet_push", {}, data):
            session.lower_session.push(msg)

    # inbound traffic bypasses VNET entirely (it is an output-side router)
