"""Resilience under faulted load: protocol error paths, an overload
model, and offered-load vs tail-latency curves for million-flow streams.

The package folds the PR 4 fault taxonomy into the PR 7 traffic engine:
:class:`~repro.resilience.faults.FaultProfile` turns per-kind rates into
deterministic per-packet fault arrivals, the segment library prices each
fault's real error path, and :mod:`repro.resilience.queueing` layers a
bounded ingress queue over the stream's per-packet service cycles to
produce p50/p99/p999 sojourn latency per offered-load point, with drop
accounting and saturation detection.  Everything is integer-exact, so
the fast and gensim engines produce bit-identical studies.
"""

from repro.resilience.faults import SCOPES, STREAM_FAULT_KINDS, FaultProfile
from repro.resilience.queueing import POLICIES, LoadPoint, OverloadSpec
from repro.resilience.study import (
    ResiliencePoint,
    ResilienceStudy,
    run_resilience_point,
    run_resilience_study,
)

__all__ = [
    "FaultProfile",
    "LoadPoint",
    "OverloadSpec",
    "POLICIES",
    "ResiliencePoint",
    "ResilienceStudy",
    "SCOPES",
    "STREAM_FAULT_KINDS",
    "run_resilience_point",
    "run_resilience_study",
]
