"""Deterministic per-packet fault arrivals for streaming traffic.

A :class:`FaultProfile` gives each receive-side fault kind of the PR 4
taxonomy a per-packet arrival probability, a scope (every flow, only the
hot half of the popularity ranking, or only the cold half plus scans)
and a seed.  The profile draws from its **own** ``random.Random`` —
seeded by a stable digest of the profile and the spec — so the traffic
spec's arrival/churn RNG stream is untouched: a faulted stream samples
the identical packet sequence as a pristine one, and only the faulted
packets' classifications differ.

The all-rates-zero profile is special by construction:
:meth:`FaultProfile.arrivals` returns ``None`` and the driver never
draws, so a rate-0 faulted stream is *bit-identical* to a pristine
stream — the identity the rate-0 tests pin on both engines.
"""

from __future__ import annotations

from bisect import bisect_right
import random
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Tuple

from repro.faults.plan import FAULT_KINDS, stable_digest
from repro.traffic.arrivals import SCAN
from repro.traffic.spec import TrafficSpec

#: the receive-side kinds a stream can price (``dropped_packet`` is a
#: send-side retransmission fault; an inbound stream never sees it)
STREAM_FAULT_KINDS = (
    "corrupt_checksum",
    "truncated_header",
    "bad_demux_key",
    "duplicated_packet",
)

#: fault scopes: every packet, the hot half of the flow popularity
#: ranking, or the cold half (scan packets count as cold)
SCOPES = ("all", "hot", "cold")


@dataclass(frozen=True)
class FaultProfile:
    """Per-kind fault arrival rates for one stream.

    ``rates`` maps fault kind -> per-packet probability, stored as a
    sorted tuple of pairs so the profile stays hashable and its JSON is
    deterministic.  The kind probabilities are disjoint (one uniform
    draw per packet against cumulative thresholds), so the total rate
    must not exceed 1.
    """

    rates: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0
    scope: str = "all"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", tuple(sorted(dict(self.rates).items())))
        unknown = {kind for kind, _rate in self.rates} - set(STREAM_FAULT_KINDS)
        if unknown:
            receive = set(STREAM_FAULT_KINDS)
            send_side = sorted(unknown & (set(FAULT_KINDS) - receive))
            if send_side:
                raise ValueError(
                    f"fault kind(s) {send_side} are send-side; a stream "
                    f"profile takes {', '.join(STREAM_FAULT_KINDS)}"
                )
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"valid kinds: {', '.join(STREAM_FAULT_KINDS)}"
            )
        for kind, rate in self.rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1], got {rate!r}")
        if self.total_rate > 1.0:
            raise ValueError(f"total fault rate {self.total_rate!r} exceeds 1")
        if self.scope not in SCOPES:
            raise ValueError(f"scope must be one of {SCOPES}, got {self.scope!r}")

    @classmethod
    def uniform(
        cls,
        rate: float,
        *,
        seed: int = 0,
        scope: str = "all",
        kinds: Tuple[str, ...] = STREAM_FAULT_KINDS,
    ) -> "FaultProfile":
        """Spread one total rate evenly over ``kinds``."""
        if not kinds:
            raise ValueError("uniform profile needs at least one kind")
        share = rate / len(kinds)
        return cls(
            rates=tuple((kind, share) for kind in kinds), seed=seed, scope=scope
        )

    @property
    def total_rate(self) -> float:
        return sum(rate for _kind, rate in self.rates)

    def to_json(self) -> dict:
        return {
            "rates": {kind: rate for kind, rate in self.rates},
            "seed": self.seed,
            "scope": self.scope,
            "total_rate": self.total_rate,
        }

    # ------------------------------------------------------------------ #
    # the per-packet draw                                                #
    # ------------------------------------------------------------------ #

    def arrivals(self, spec: TrafficSpec) -> Optional[Callable[[], Optional[str]]]:
        """A per-packet sampler, or ``None`` when every rate is zero.

        The ``None`` fast path is what makes rate-0 identity structural:
        the stream driver draws nothing, touches no RNG, and feeds the
        exact pristine variants.  With any positive rate the sampler
        consumes exactly one uniform per packet regardless of outcome,
        so the fault sequence is a pure function of (profile, spec).
        """
        kinds: List[str] = []  # bounded: one entry per fault kind
        cum: List[float] = []  # bounded: one entry per fault kind
        acc = 0.0
        for kind, rate in self.rates:
            if rate > 0.0:
                acc += rate
                kinds.append(kind)
                cum.append(acc)
        if not kinds:
            return None
        rng = random.Random(
            stable_digest(
                "stream-faults",
                self.seed,
                self.scope,
                self.rates,
                spec.seed,
                spec.stack,
                spec.mix,
                spec.flows,
            )
        )
        total = acc

        def draw() -> Optional[str]:
            u = rng.random()
            if u >= total:
                return None
            return kinds[bisect_right(cum, u)]

        return draw

    def scope_filter(self, spec: TrafficSpec) -> Optional[Callable[[int], bool]]:
        """Slot predicate for non-``all`` scopes (``None`` = no filter).

        Slot index *is* the popularity rank (slot 0 is hottest under
        Zipf), so the hot scope is the top half of slots; scan packets
        carry never-bound keys and count as cold.
        """
        if self.scope == "all":
            return None
        half = spec.flows // 2
        if self.scope == "hot":
            return lambda slot: slot != SCAN and slot < half
        return lambda slot: slot == SCAN or slot >= half


def profile_from_rates(
    rates: Mapping[str, float], *, seed: int = 0, scope: str = "all"
) -> FaultProfile:
    """Convenience constructor from a plain mapping."""
    return FaultProfile(rates=tuple(rates.items()), seed=seed, scope=scope)
