"""Bounded ingress queue, offered-load schedules and exact percentiles.

The overload model layers a single-server FIFO queue over the stream's
per-packet service demands (simulated cycles: memory stalls + CPU work
of each packet's segment).  Offered load is expressed as a percentage of
the stream's own service capacity: at ``load_pct`` the i-th packet
arrives at ``(i * base_cycles * 100) // load_pct`` where ``base_cycles``
is the stream's mean service demand — 100% offers exactly one mean
service time per mean service time, >100% overdrives the server.

Everything is integer arithmetic on the simulated-cycle timeline: no
floats touch arrival times, sojourns or percentiles, so two engines (or
two runs) produce bit-identical latency curves.

Admission control is by policy: ``drop-tail`` bounds the packets in
system at ``queue_capacity`` and drops arrivals beyond it (saturation =
any drop); ``unbounded`` admits everything and calls the stream
saturated when the end-of-run backlog exceeds ``backlog_threshold``
mean service times (the queue kept growing instead of draining).
Latency is the sojourn time (finish - arrival) of admitted packets,
reported as exact nearest-rank p50/p99/p999.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: admission-control policies of the ingress queue
POLICIES = ("drop-tail", "unbounded")

#: offered-load points (percent of the stream's service capacity); the
#: default sweep brackets the saturation knee at 100%
DEFAULT_LOADS = (60, 80, 90, 100, 110, 130)


@dataclass(frozen=True)
class OverloadSpec:
    """One overload experiment: load schedule, queue bound, policy."""

    loads: Tuple[int, ...] = DEFAULT_LOADS
    #: max packets in system (in service + queued) under drop-tail
    queue_capacity: int = 64
    policy: str = "drop-tail"
    #: unbounded policy: end backlog (in mean-service units) that counts
    #: as saturation
    backlog_threshold: int = 100

    def validate(self) -> None:
        if not self.loads:
            raise ValueError("loads must be non-empty")
        for load in self.loads:
            if load <= 0:
                raise ValueError(f"offered load must be positive, got {load!r}")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.backlog_threshold <= 0:
            raise ValueError("backlog_threshold must be positive")

    def to_json(self) -> dict:
        return {
            "loads": list(self.loads),
            "queue_capacity": self.queue_capacity,
            "policy": self.policy,
            "backlog_threshold": self.backlog_threshold,
        }


@dataclass(frozen=True)
class LoadPoint:
    """The queue's behavior at one offered-load point."""

    load_pct: int
    offered: int
    admitted: int
    dropped: int
    p50: int
    p99: int
    p999: int
    max_sojourn: int
    #: backlog (cycles of unfinished work) when the arrivals ended
    end_backlog: int
    saturated: bool

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    def to_json(self) -> dict:
        return {
            "load_pct": self.load_pct,
            "offered": self.offered,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max_sojourn": self.max_sojourn,
            "end_backlog": self.end_backlog,
            "saturated": self.saturated,
            "drop_fraction": self.drop_fraction,
        }


def mean_service_cycles(services: Sequence[int]) -> int:
    """The stream's mean per-packet service demand (floor, >= 1)."""
    if not services:
        raise ValueError("no service demands to calibrate against")
    return max(1, sum(services) // len(services))


def percentiles(hist: Counter, qs: Sequence[float]) -> List[int]:
    """Exact nearest-rank percentiles of a value histogram.

    ``qs`` must be sorted ascending; the 1-indexed nearest rank of q is
    ``max(1, ceil(q * n))``, computed in integers (q is snapped to a
    per-mille so float representation error cannot shift a rank).
    """
    n = sum(hist.values())
    if n == 0:
        return [0 for _ in qs]
    ranks = [max(1, -(-int(round(q * 1000)) * n // 1000)) for q in qs]
    out: List[int] = []  # bounded: one entry per requested quantile
    cum = 0
    want = 0
    for value in sorted(hist):
        cum += hist[value]
        while want < len(ranks) and cum >= ranks[want]:
            out.append(value)
            want += 1
        if want == len(ranks):
            break
    while len(out) < len(qs):
        out.append(out[-1] if out else 0)
    return out


def simulate_queue(
    services: Sequence[int],
    load_pct: int,
    overload: OverloadSpec,
    base_cycles: int,
) -> LoadPoint:
    """Run the single-server FIFO queue at one offered-load point."""
    capacity = overload.queue_capacity
    drop_tail = overload.policy == "drop-tail"
    # finish times of packets in system; drained on every arrival and
    # capped at queue_capacity under drop-tail, so it stays bounded
    in_system: deque = deque()
    server_free = 0
    # bounded: distinct sojourn values of one load point
    hist: Counter = Counter()
    dropped = 0
    max_sojourn = 0
    arrival = 0
    for i, service in enumerate(services):
        arrival = (i * base_cycles * 100) // load_pct
        while in_system and in_system[0] <= arrival:
            in_system.popleft()
        if drop_tail and len(in_system) >= capacity:
            dropped += 1
            continue
        start = server_free if server_free > arrival else arrival
        finish = start + service
        server_free = finish
        in_system.append(finish)
        sojourn = finish - arrival
        hist[sojourn] += 1
        if sojourn > max_sojourn:
            max_sojourn = sojourn
    offered = len(services)
    admitted = offered - dropped
    p50, p99, p999 = percentiles(hist, (0.50, 0.99, 0.999))
    end_backlog = server_free - arrival if server_free > arrival else 0
    if drop_tail:
        saturated = dropped > 0
    else:
        saturated = end_backlog > overload.backlog_threshold * base_cycles
    return LoadPoint(
        load_pct=load_pct,
        offered=offered,
        admitted=admitted,
        dropped=dropped,
        p50=p50,
        p99=p99,
        p999=p999,
        max_sojourn=max_sojourn,
        end_backlog=end_backlog,
        saturated=saturated,
    )
