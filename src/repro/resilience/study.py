"""The resilience study: scheme x mix x fault-rate cells under load.

``run_resilience_point`` streams one faulted spec through one caching
scheme (a single streaming pass collecting per-packet service demands),
then replays the service sequence through the overload queue at every
offered-load point — the queue is pure integer arithmetic, so the
latency curves cost nothing compared to the stream itself and are
bit-identical across engines.  ``run_resilience_study`` sweeps the grid,
optionally on the self-healing process pool, and embeds the structured
:class:`~repro.harness.parallel.SweepReport` in its JSON artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.simulator import AlphaConfig
from repro.harness.parallel import SweepReport, run_parallel_cells
from repro.resilience.faults import FaultProfile
from repro.resilience.queueing import (
    LoadPoint,
    OverloadSpec,
    mean_service_cycles,
    simulate_queue,
)
from repro.traffic.spec import MIXES, TrafficSpec
from repro.traffic.study import (
    StreamCollector,
    TrafficPoint,
    _CellSetup,
    _normalize_engine,
    run_traffic_point,
)
from repro.xkernel.map import make_scheme

#: artifact schema tag so downstream tooling can dispatch on shape
SCHEMA = "repro.resilience/1"


@dataclass
class ResiliencePoint:
    """One (spec, scheme, fault-profile) cell: stream + latency curves."""

    traffic: TrafficPoint
    profile: FaultProfile
    overload: OverloadSpec
    #: injected fault arrivals by kind (deterministic per profile+spec)
    fault_counts: Dict[str, int]
    #: the stream's mean per-packet service demand, the queue's calibre
    base_service_cycles: int
    load_points: List[LoadPoint]

    @property
    def faulted_packets(self) -> int:
        return sum(self.fault_counts.values())

    @property
    def saturation_point(self) -> Optional[int]:
        """The lowest offered load (percent) that saturated the queue."""
        for point in self.load_points:
            if point.saturated:
                return point.load_pct
        return None

    def to_json(self) -> dict:
        return {
            "traffic": self.traffic.to_json(),
            "profile": self.profile.to_json(),
            "overload": self.overload.to_json(),
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "faulted_packets": self.faulted_packets,
            "base_service_cycles": self.base_service_cycles,
            "loads": [point.to_json() for point in self.load_points],
            "saturation_point": self.saturation_point,
        }


@dataclass
class ResilienceStudy:
    """A sweep's points plus the axes and provenance that produced them."""

    base_spec: TrafficSpec
    engine: str
    schemes: Tuple[str, ...]
    mixes: Tuple[str, ...]
    fault_rates: Tuple[float, ...]
    profile_seed: int
    scope: str
    overload: OverloadSpec
    # bounded: one entry per grid point
    points: List[ResiliencePoint] = field(default_factory=list)
    sweep: SweepReport = field(default_factory=SweepReport)

    def point(self, scheme: str, mix: str, rate: float) -> ResiliencePoint:
        for p in self.points:
            if (
                p.traffic.scheme == scheme
                and p.traffic.spec.mix == mix
                and p.profile.total_rate == rate
            ):
                return p
        raise KeyError(f"no point for {(scheme, mix, rate)}")

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "generator": "repro.api.resilience",
            "base_spec": self.base_spec.to_json(),
            "engine": self.engine,
            "schemes": list(self.schemes),
            "mixes": list(self.mixes),
            "fault_rates": list(self.fault_rates),
            "profile_seed": self.profile_seed,
            "scope": self.scope,
            "overload": self.overload.to_json(),
            "points": [p.to_json() for p in self.points],
            "sweep": self.sweep.to_json(),
        }

    def render(self) -> str:
        from repro.harness.reporting import (
            render_resilience_table,
            render_sweep_report,
        )

        text = render_resilience_table(self)
        if self.sweep.incidents or self.sweep.failures or self.sweep.divergences:
            text += "\n\n" + render_sweep_report(self.sweep)
        return text

    def check(self) -> List[str]:
        return [f"sweep failure: {i.render()}" for i in self.sweep.failures]


def run_resilience_point(
    spec: TrafficSpec,
    scheme_spec: str,
    *,
    profile: FaultProfile,
    overload: Optional[OverloadSpec] = None,
    engine: str = "fast",
    config: Optional[AlphaConfig] = None,
    setup: Optional[_CellSetup] = None,
    watchdog_s: Optional[float] = None,
) -> ResiliencePoint:
    """One streaming pass, then the full offered-load latency sweep."""
    overload = overload or OverloadSpec()
    overload.validate()
    collect = StreamCollector()
    traffic = run_traffic_point(
        spec,
        scheme_spec,
        engine=engine,
        config=config,
        setup=setup,
        faults=profile,
        collect=collect,
        watchdog_s=watchdog_s,
    )
    base_cycles = mean_service_cycles(collect.services)
    load_points = [
        simulate_queue(collect.services, load, overload, base_cycles)
        for load in overload.loads
    ]
    return ResiliencePoint(
        traffic=traffic,
        profile=profile,
        overload=overload,
        fault_counts={kind: int(n) for kind, n in sorted(collect.faults.items())},
        base_service_cycles=base_cycles,
        load_points=load_points,
    )


def _point_worker(
    spec: TrafficSpec,
    scheme_spec: str,
    profile: FaultProfile,
    overload: OverloadSpec,
    engine: str,
    attempt: int = 0,
) -> ResiliencePoint:
    """Pool worker: one grid cell, rebuilt from its picklable payload."""
    del attempt  # deterministic cells are bit-identical on retries
    return run_resilience_point(
        spec, scheme_spec, profile=profile, overload=overload, engine=engine
    )


def run_resilience_study(
    base_spec: TrafficSpec,
    *,
    schemes: Sequence[str] = ("one-entry", "lru:4"),
    mixes: Optional[Sequence[str]] = None,
    fault_rates: Sequence[float] = (0.0, 0.01),
    profile_seed: int = 0,
    scope: str = "all",
    overload: Optional[OverloadSpec] = None,
    engine: str = "fast",
    config: Optional[AlphaConfig] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    report: Optional[SweepReport] = None,
) -> ResilienceStudy:
    """Sweep scheme x mix x fault-rate over one cell and engine.

    Points are independent (fresh maps, machine and seeds per point), so
    the serial and parallel paths produce bit-identical studies; the
    parallel path dispatches whole cells through the self-healing pool
    and folds its :class:`SweepReport` into the study artifact.
    """
    mixes = tuple(mixes) if mixes is not None else (base_spec.mix,)
    for mix in mixes:
        if mix not in MIXES:
            raise ValueError(f"mix must be one of {MIXES}, got {mix!r}")
    schemes = tuple(make_scheme(s).name for s in schemes)
    fault_rates = tuple(fault_rates)
    overload = overload or OverloadSpec()
    overload.validate()
    config = config or AlphaConfig()
    engine = _normalize_engine(engine)
    if report is None:
        report = SweepReport()
    report.stack = base_spec.stack
    report.engine = engine
    report.configs = tuple(
        f"{scheme}/{mix}/r{rate:g}"
        for mix in mixes
        for rate in fault_rates
        for scheme in schemes
    )
    report.samples = 1
    study = ResilienceStudy(
        base_spec=base_spec,
        engine=engine,
        schemes=schemes,
        mixes=mixes,
        fault_rates=fault_rates,
        profile_seed=profile_seed,
        scope=scope,
        overload=overload,
        sweep=report,
    )

    # bounded: one entry per grid cell
    cells: List[Tuple[TrafficSpec, str, FaultProfile]] = []
    for mix in mixes:
        spec = base_spec.with_(mix=mix)
        for rate in fault_rates:
            profile = FaultProfile.uniform(rate, seed=profile_seed, scope=scope)
            for scheme in schemes:
                cells.append((spec, scheme, profile))

    if parallel:
        payloads = [
            (spec, scheme, profile, overload, engine)
            for spec, scheme, profile in cells
        ]
        labels = [
            (f"{scheme}/{spec.mix}/r{profile.total_rate:g}", spec.seed)
            for spec, scheme, profile in cells
        ]
        results = run_parallel_cells(
            _point_worker,
            payloads,
            labels,
            max_workers=max_workers,
            report=report,
        )
        study.points.extend(results)
    else:
        setup = _CellSetup(base_spec, config)
        for spec, scheme, profile in cells:
            study.points.append(
                run_resilience_point(
                    spec,
                    scheme,
                    profile=profile,
                    overload=overload,
                    engine=engine,
                    config=config,
                    setup=setup,
                )
            )
            report.completed += 1
    return study
