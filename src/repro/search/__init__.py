"""Profile-guided layout search (the tentpole of ``python -m repro search``).

The paper hand-designs its layouts: the bipartite split and the
micro-positioned trace-driven placement.  This package treats layout as a
search problem over the same space — candidate generators propose
placements (a greedy conflict-graph placer seeded from the observed
:class:`repro.obs.conflicts.ConflictMatrix`, a Pettis–Hansen-style
call-affinity ordering derived from walked event streams, and a seeded
local-search mutator), a batched evaluator scores them through the fast
engine, and a driver loops generate → prefilter → simulate → select,
reporting the best layout found against the paper's baselines.

Layers:

* :mod:`repro.search.artifact` — the genome representation
  (:class:`Gene` / genome tuples), the monotone-cursor packer that turns
  genomes into non-overlapping aligned placements, and the replayable
  :class:`LayoutArtifact` JSON artifact;
* :mod:`repro.search.generators` — candidate genome generators and the
  mutation kernel;
* :mod:`repro.search.evaluate` — the per-cell evaluator (static
  prefilter cost + full engine scoring), serial and pool-parallel;
* :mod:`repro.search.driver` — the search loop, baselines and the
  :class:`~repro.search.driver.SearchResult` report.
"""

from repro.search.artifact import Gene, Genome, LayoutArtifact, pack_genome
from repro.search.driver import DEFAULT_BUDGET, SearchResult, search_cell
from repro.search.evaluate import CellEvaluator, Score

__all__ = [
    "CellEvaluator",
    "DEFAULT_BUDGET",
    "Gene",
    "Genome",
    "LayoutArtifact",
    "Score",
    "SearchResult",
    "pack_genome",
    "search_cell",
]
