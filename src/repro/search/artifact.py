"""Genomes, the packer, and the replayable layout artifact.

A candidate layout is represented as a *genome*: an ordered tuple of
:class:`Gene` entries, one per placed function.  The genome fixes the
packing **order**; a gene may additionally pin its function to a specific
i-cache set index (``set_offset``).  :func:`pack_genome` turns a genome
into concrete base addresses with a monotone cursor — the cursor only
ever moves forward, so every packed layout is non-overlapping and
``FUNCTION_ALIGN``-aligned *by construction*, and a pinned gene lands
exactly on its requested set boundary.  Functions the genome does not
mention are appended after the placed image (they exist but were never
touched by the traced path).

The search result ships as a :class:`LayoutArtifact`: the winning
genome, the exact absolute placements it evaluated to, the score, the
baseline it beat, and the provenance (stack, config, seed, budget,
engine).  ``artifact.strategy()`` adapts the placements into a
``LayoutStrategy`` for :func:`repro.harness.configs.
build_configured_program` — the build pipeline is deterministic, so
replaying the artifact reproduces the searched program image address for
address, bit-identically.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.layout import BLOCK, ICACHE, LayoutStrategy, _align
from repro.core.program import FUNCTION_ALIGN, Program

#: i-cache sets (= blocks) a ``set_offset`` may name
NSETS = ICACHE // BLOCK

ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class Gene:
    """One placed function: its packing rank and optional set pin."""

    name: str
    #: i-cache set index ``[0, NSETS)`` the function's base must map to,
    #: or ``None`` to pack densely at the cursor
    set_offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.set_offset is not None and not (
            0 <= self.set_offset < NSETS
        ):
            raise ValueError(
                f"set_offset {self.set_offset} outside [0, {NSETS})"
            )


Genome = Tuple[Gene, ...]


def pack_genome(program: Program, genome: Genome) -> Dict[str, int]:
    """Concrete base addresses for ``genome``, non-overlapping by design.

    The cursor starts at ``program.text_base`` and advances monotonically
    past each placed function.  A pinned gene advances the cursor to the
    next address whose i-cache set index equals its ``set_offset`` (at
    most one cache image away); an unpinned gene packs at the aligned
    cursor.  Unmentioned functions are packed after the placed image,
    one i-cache image clear of it, in sorted order (deterministic).
    """
    out: Dict[str, int] = {}
    addr = program.text_base
    for gene in genome:
        if gene.name not in program:
            continue
        if gene.name in out:
            raise ValueError(f"genome places {gene.name!r} twice")
        addr = _align(addr, FUNCTION_ALIGN)
        if gene.set_offset is not None:
            want = gene.set_offset * BLOCK
            here = (addr - program.text_base) % ICACHE
            addr += (want - here) % ICACHE
        out[gene.name] = addr
        addr += program.size_of(gene.name)
    rest = [n for n in program.names() if n not in out]
    tail = _align(addr, ICACHE) + ICACHE
    for name in sorted(rest):
        tail = _align(tail, FUNCTION_ALIGN)
        out[name] = tail
        tail += program.size_of(name)
    return out


def genome_to_json(genome: Genome) -> list:
    return [
        {"name": g.name, "set_offset": g.set_offset} for g in genome
    ]


def genome_from_json(data: list) -> Genome:
    return tuple(
        Gene(entry["name"], entry.get("set_offset")) for entry in data
    )


@dataclass
class LayoutArtifact:
    """A searched layout, with enough provenance to reproduce and replay it."""

    stack: str
    config: str
    #: search seed (drives every random choice of the run)
    seed: int
    budget: int
    engine: str
    #: winning score: steady_mcpi / cold_icache_misses / rtt_us
    score: Dict[str, float]
    #: the cell's default-layout baseline, same keys
    baseline: Dict[str, float]
    genome: Genome
    #: the exact absolute placements the winner evaluated with
    placements: Dict[str, int]
    #: generator provenance ("incumbent", "affinity", "conflict",
    #: "mutate:<parent>") and the search round that produced the winner
    origin: str = ""
    round_found: int = 0
    version: int = ARTIFACT_VERSION
    extra: Dict[str, object] = field(default_factory=dict)

    def strategy(self) -> LayoutStrategy:
        """Adapt the recorded placements into a ``LayoutStrategy``.

        Fails loudly if the program being laid out does not match the
        artifact's function set — a drifted build pipeline must not be
        silently replayed against stale addresses.
        """
        placements = dict(self.placements)

        def replay(program: Program) -> Dict[str, int]:
            missing = [n for n in program.names() if n not in placements]
            if missing:
                raise ValueError(
                    f"layout artifact for ({self.stack}, {self.config}) "
                    f"does not place {len(missing)} function(s) of this "
                    f"build: {sorted(missing)[:5]} ... — the artifact is "
                    "stale for this pipeline"
                )
            return {n: placements[n] for n in program.names()}

        return replay

    def to_json(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "stack": self.stack,
            "config": self.config,
            "seed": self.seed,
            "budget": self.budget,
            "engine": self.engine,
            "score": dict(self.score),
            "baseline": dict(self.baseline),
            "origin": self.origin,
            "round_found": self.round_found,
            "genome": genome_to_json(self.genome),
            "placements": dict(sorted(self.placements.items())),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "LayoutArtifact":
        return cls(
            stack=data["stack"],
            config=data["config"],
            seed=data["seed"],
            budget=data["budget"],
            engine=data["engine"],
            score=dict(data["score"]),
            baseline=dict(data["baseline"]),
            genome=genome_from_json(data["genome"]),
            placements={k: int(v) for k, v in data["placements"].items()},
            origin=data.get("origin", ""),
            round_found=data.get("round_found", 0),
            version=data.get("version", ARTIFACT_VERSION),
            extra=dict(data.get("extra", {})),
        )

    def save(self, path) -> None:
        text = json.dumps(self.to_json(), indent=2, sort_keys=True)
        pathlib.Path(path).write_text(text + "\n")

    @classmethod
    def load(cls, path) -> "LayoutArtifact":
        return cls.from_json(json.loads(pathlib.Path(path).read_text()))
