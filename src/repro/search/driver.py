"""The search loop: generate → prefilter → simulate → select.

:func:`search_cell` runs a seeded, budgeted layout search over one
(stack, config) cell.  Round structure:

1. **Seed round** — three deterministic candidates enter first: the
   incumbent (the cell's default layout, which therefore bounds the
   result: the search can never regress the baseline), the
   Pettis–Hansen-style affinity ordering, and the conflict-graph placer
   seeded from an observed :class:`~repro.obs.conflicts.ConflictMatrix`.
2. **Mutation rounds** — the current elite genomes spawn local-search
   mutants (swap / rotate / re-pin moves) until the simulation budget is
   spent.
3. **Prefilter** — each round, the statically-cheapest half of the fresh
   candidates (shared placement-cost model + static conflict predictor)
   goes on to full simulation; the rest are dropped without paying for a
   walk.

Every random choice draws from one ``random.Random(seed)``, candidate
scores are bit-identical across engines, and selection ties break by
generation order — so equal (cell, budget, seed) searches return
bit-identical winners on the fast and reference engines alike.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.settings import Settings
from repro.obs.conflicts import ConflictMatrix
from repro.search.artifact import Genome, LayoutArtifact, pack_genome
from repro.search.evaluate import CellEvaluator, Placements, Score
from repro.search.generators import (
    affinity_genome,
    call_sequence,
    conflict_genome,
    incumbent_genome,
    mutate,
)

#: default number of candidates that pay for full simulation
DEFAULT_BUDGET = 64
#: elite genomes kept as mutation parents
ELITE = 4
#: fresh candidates generated per round (before prefiltering)
ROUND_SIZE = 16


@dataclass
class SearchResult:
    """Everything a search run found, measured, and rejected."""

    stack: str
    config: str
    seed: int
    budget: int
    engine: str
    artifact: LayoutArtifact
    best_score: Score
    baseline_score: Score
    bipartite_score: Optional[Score] = None
    micro_score: Optional[Score] = None
    #: candidates that paid for full simulation (baselines excluded)
    evaluated: int = 0
    generated: int = 0
    prefiltered_out: int = 0
    #: candidates dropped by the certified bounds prefilter: their static
    #: steady lower bound exceeded the round-start elite floor, so they
    #: provably could not improve the result — each one is a simulation
    #: the search did not have to pay for
    bounds_pruned: int = 0
    rounds: int = 0
    #: (round, best steady mCPI so far) per round
    history: List[Tuple[int, float]] = field(default_factory=list)
    #: statically-rejected candidates (only with ``keep_rejected=True``)
    rejected: List[Placements] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.best_score < self.baseline_score

    @property
    def sims_avoided(self) -> int:
        """Simulations the certified bounds prefilter saved."""
        return self.bounds_pruned

    def summary(self) -> str:
        lines = [
            f"layout search: {self.stack}/{self.config} "
            f"(seed {self.seed}, budget {self.budget}, {self.engine} engine)",
            f"  evaluated {self.evaluated} candidates in {self.rounds} "
            f"round(s); {self.prefiltered_out} prefiltered out of "
            f"{self.generated} generated; {self.bounds_pruned} "
            f"bounds-pruned (simulations avoided)",
        ]

        def row(label: str, score: Optional[Score]) -> str:
            if score is None:
                return f"  {label:<18} -"
            return (
                f"  {label:<18} mCPI {score.steady_mcpi:.4f}  "
                f"cold-miss {score.cold_icache_misses:5d}  "
                f"rtt {score.rtt_us:8.2f} us"
            )

        lines.append(row("baseline (default)", self.baseline_score))
        lines.append(row("bipartite", self.bipartite_score))
        lines.append(row("micro-positioned", self.micro_score))
        lines.append(row("best found", self.best_score))
        verdict = (
            "improves on" if self.improved else "matches"
        )
        lines.append(
            f"  best ({self.artifact.origin}, round "
            f"{self.artifact.round_found}) {verdict} the baseline"
        )
        return "\n".join(lines)

    # ---- the repro.api Result protocol -------------------------------- #

    def render(self) -> str:
        return self.summary()

    def check(self) -> List[str]:
        """A winner that scores worse than the baseline it was seeded with
        would mean the elite loop dropped a candidate — never clean."""
        if self.best_score > self.baseline_score:
            return [
                f"{self.stack}/{self.config}: best score "
                f"{self.best_score.steady_mcpi:.4f} regressed past the "
                f"baseline {self.baseline_score.steady_mcpi:.4f}"
            ]
        return []

    def to_json(self) -> Dict[str, object]:
        return {
            "stack": self.stack,
            "config": self.config,
            "seed": self.seed,
            "budget": self.budget,
            "engine": self.engine,
            "best": self.best_score.to_json(),
            "baseline": self.baseline_score.to_json(),
            "bipartite": (
                self.bipartite_score.to_json()
                if self.bipartite_score else None
            ),
            "micro": (
                self.micro_score.to_json() if self.micro_score else None
            ),
            "evaluated": self.evaluated,
            "generated": self.generated,
            "prefiltered_out": self.prefiltered_out,
            "bounds_pruned": self.bounds_pruned,
            "sims_avoided": self.sims_avoided,
            "rounds": self.rounds,
            "history": [list(h) for h in self.history],
            "artifact": self.artifact.to_json(),
        }


def _profile_conflicts(evaluator: CellEvaluator) -> ConflictMatrix:
    """One attributed cold+steady pass on the default layout; returns the
    steady-state eviction matrix that seeds the conflict placer."""
    from repro.arch.fastsim import FastMachine
    from repro.core.fastwalk import FastWalker
    from repro.obs.attribution import Attribution

    program = evaluator.program
    walk = FastWalker(program, dict(evaluator._data_env)).walk(
        evaluator._clone_events(evaluator._events)
    )
    sink = Attribution(program)
    machine = FastMachine(sink=sink)
    machine.run(walk.packed)
    sink.harvest("cold")
    machine.warm_up(walk.packed)
    machine.run(walk.packed)
    return sink.harvest("steady").conflicts


def _fingerprint(placements: Placements) -> Tuple:
    return tuple(sorted(placements.items()))


def search_cell(
    stack: str,
    config: str,
    *,
    opts=None,
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    base_seed: int = 42,
    settings: Optional[Settings] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    prefilter: bool = True,
    certify_prune: bool = True,
    keep_rejected: bool = False,
    micro_baseline: bool = False,
) -> SearchResult:
    """Search one cell for a better layout; deterministic in (seed, budget).

    ``budget`` bounds full simulations of *candidates* (baseline scoring
    is free).  ``micro_baseline`` additionally scores the paper's
    micro-positioned layout for the report (it is trace-greedy and
    costs a few seconds, so it is opt-in).  ``keep_rejected`` records
    the placements the static prefilter dropped, for soundness audits.

    ``certify_prune`` enables the certified bounds prefilter: once the
    elite pool is full, candidates whose *sound* static steady-mCPI
    lower bound (:meth:`CellEvaluator.steady_lower_bound`) exceeds the
    round-start elite floor are dropped without simulation.  Unlike the
    heuristic ``prefilter``, this cannot change the outcome — pruned
    candidates provably could not beat the floor — so searches with and
    without it return bit-identical artifacts; ``bounds_pruned`` counts
    the simulations it saved.
    """
    if budget < 1:
        raise ValueError("search budget must be >= 1")
    rng = random.Random(seed)
    evaluator = CellEvaluator(
        stack, config, opts, settings=settings, base_seed=base_seed
    )
    program = evaluator.program

    # seed genomes read the pristine default layout — build them before
    # any scoring re-lays the program out
    incumbent = incumbent_genome(program)
    calls = call_sequence(evaluator._events, program)
    matrix = _profile_conflicts(evaluator)
    seed_pool: List[Tuple[str, Genome]] = [
        ("incumbent", incumbent),
        ("affinity", affinity_genome(calls, program)),
        ("conflict", conflict_genome(matrix, program, calls)),
    ]

    # ---- baselines (not charged against the budget) ------------------ #
    baseline = evaluator.score(evaluator.default_placements)
    from repro.core.layout import bipartite_layout, micro_positioning_layout
    from repro.protocols.models.library import (
        COLD_LIBRARY_FUNCTIONS,
        HOT_LIBRARY_FUNCTIONS,
    )

    bipartite_placements = bipartite_layout(
        evaluator.build.hot_functions + list(COLD_LIBRARY_FUNCTIONS),
        list(HOT_LIBRARY_FUNCTIONS),
    )(program)
    bipartite_score = evaluator.score(bipartite_placements)
    micro_score = None
    if micro_baseline:
        micro_placements = micro_positioning_layout(
            evaluator.block_trace
        )(program)
        micro_score = evaluator.score(micro_placements)

    # the incumbent IS the starting best: search never regresses it
    best_score = baseline
    best_genome = incumbent
    best_placements = dict(evaluator.default_placements)
    best_origin = "default"
    best_round = 0
    elite: List[Tuple[Score, int, str, Genome]] = []
    seen = {_fingerprint(evaluator.default_placements)}

    result = SearchResult(
        stack=stack, config=config, seed=seed, budget=budget,
        engine=evaluator.engine, artifact=None,  # filled at the end
        best_score=baseline, baseline_score=baseline,
        bipartite_score=bipartite_score, micro_score=micro_score,
    )
    result.history.append((0, best_score.steady_mcpi))

    generation = 0
    round_no = 0
    while result.evaluated < budget:
        round_no += 1
        remaining = budget - result.evaluated

        # ---- generate ------------------------------------------------ #
        fresh: List[Tuple[str, Genome, Placements]] = []
        if round_no == 1:
            for origin, genome in seed_pool:
                placements = pack_genome(program, genome)
                fp = _fingerprint(placements)
                if fp not in seen:
                    seen.add(fp)
                    fresh.append((origin, genome, placements))
        parents = [
            (origin, genome) for _, _, origin, genome in sorted(
                elite, key=lambda e: (e[0], e[1])
            )[:ELITE]
        ] or list(seed_pool)
        attempts = 0
        while len(fresh) < ROUND_SIZE and attempts < ROUND_SIZE * 8:
            attempts += 1
            parent_origin, parent = parents[
                rng.randrange(len(parents))
            ]
            child = mutate(parent, rng)
            placements = pack_genome(program, child)
            fp = _fingerprint(placements)
            if fp in seen:
                continue
            seen.add(fp)
            # provenance names the seed family, not the mutation depth
            origin = (
                parent_origin
                if parent_origin.startswith("mutate:")
                else f"mutate:{parent_origin}"
            )
            fresh.append((origin, child, placements))
        if not fresh:
            break  # the neighbourhood is exhausted
        result.generated += len(fresh)

        # ---- prefilter ----------------------------------------------- #
        if prefilter:
            keep = min(remaining, max(1, len(fresh) // 2))
        else:
            keep = min(remaining, len(fresh))
        kept_idx = evaluator.prefilter(
            [placements for _, _, placements in fresh], keep
        )
        kept = [fresh[i] for i in kept_idx]
        dropped = [
            fresh[i] for i in range(len(fresh)) if i not in set(kept_idx)
        ]
        result.prefiltered_out += len(dropped)
        if keep_rejected:
            result.rejected.extend(p for _, _, p in dropped)

        # ---- certified bounds prune ---------------------------------- #
        # a candidate whose *sound* steady lower bound strictly exceeds
        # the round-start elite floor (the ELITE-th best steady mCPI)
        # provably cannot enter the post-round top-ELITE — scores only
        # push that floor down — nor beat best_score (which is <= every
        # elite score on the first, strictly-dominating key).  Elite
        # slots past ELITE never become parents or artifacts, so
        # skipping the simulation cannot change any later decision:
        # searches with and without pruning return bit-identical
        # results.  Pruned candidates still consume budget and a
        # generation number, exactly as if simulated and discarded.
        prune_floor: Optional[float] = None
        if certify_prune and len(elite) >= ELITE:
            floor = sorted(elite, key=lambda e: (e[0], e[1]))[ELITE - 1]
            prune_floor = floor[0].steady_mcpi
        to_sim: List[int] = []
        gen_of: List[int] = []
        for idx, (_, _, placements) in enumerate(kept):
            generation += 1
            gen_of.append(generation)
            if (
                prune_floor is not None
                and evaluator.steady_lower_bound(placements) > prune_floor
            ):
                result.bounds_pruned += 1
                continue
            to_sim.append(idx)

        # ---- simulate + select --------------------------------------- #
        scores = evaluator.score_placements(
            [kept[i][2] for i in to_sim],
            parallel=parallel, max_workers=max_workers,
        )
        result.evaluated += len(kept)
        for idx, score in zip(to_sim, scores):
            origin, genome, placements = kept[idx]
            elite.append((score, gen_of[idx], origin, genome))
            if score < best_score:
                best_score = score
                best_genome = genome
                best_placements = placements
                best_origin = origin
                best_round = round_no
        elite.sort(key=lambda e: (e[0], e[1]))
        del elite[ELITE * 2:]
        result.history.append((round_no, best_score.steady_mcpi))

    result.rounds = round_no
    result.best_score = best_score
    result.artifact = LayoutArtifact(
        stack=stack, config=config, seed=seed, budget=budget,
        engine=evaluator.engine, score=best_score.to_json(),
        baseline=baseline.to_json(), genome=best_genome,
        placements=best_placements, origin=best_origin,
        round_found=best_round,
        extra={
            "base_seed": base_seed,
            "evaluated": result.evaluated,
            "bounds_pruned": result.bounds_pruned,
            "sims_avoided": result.sims_avoided,
        },
    )
    evaluator.restore_default()
    return result
