"""Candidate-layout scoring: static prefilter plus full engine evaluation.

One :class:`CellEvaluator` owns a *private* build of its (stack, config)
cell — candidate layouts are applied in place, so the shared build memo
must never see this program — plus one captured roundtrip.  Scoring a
candidate is then: re-lay the program out, drop the walk-template cache
(templates embed absolute pcs), walk a fresh clone of the captured
events, and simulate cold + steady through the fast engine's cached
kernel.  Identical candidate layouts produce identical packed traces, so
duplicate candidates across rounds hit the simulation result cache and
cost microseconds, not milliseconds.

The static prefilter avoids the walk+simulate cost entirely for
obviously-bad candidates: it combines the shared placement-cost model
(:func:`repro.core.placement.replacement_misses` over the cell's block
trace — the same cost micro-positioning minimizes) with the static
eviction graph of :func:`repro.analysis.conflicts.predict_conflicts`,
weighting each predicted-likely conflict pair by how often the trace
actually touches both functions.

Scores order lexicographically — steady mCPI, then cold i-cache misses,
then end-to-end RTT — matching the paper's priorities (steady-state
memory CPI is the headline number; cold misses and latency break ties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.settings import Settings
from repro.arch.memory import MemoryConfig
from repro.arch.simcache import (
    gensim_cold_and_steady_cached,
    simulate_cold_and_steady_cached,
)
from repro.arch.simulator import MachineSimulator
from repro.core.fastwalk import FastWalker
from repro.core.layout import BLOCK
from repro.core.metrics import trace_block_touches
from repro.core.placement import steady_replacement_misses
from repro.core.program import Program
from repro.core.walker import Walker
from repro.search.artifact import NSETS

Placements = Dict[str, int]

#: b-cache sets at block granularity (2 MB direct-mapped, 32 B blocks)
NBSETS = MemoryConfig.bcache_size // MemoryConfig.block_size
#: static-cost weights, from the modeled stall latencies: a replaced
#: i-block that hits the b-cache stalls ~10 cycles; one evicted from the
#: b-cache as well pays the main-memory penalty on top
ICACHE_MISS_CYCLES = MemoryConfig.bcache_hit_cycles
BCACHE_MISS_CYCLES = (
    MemoryConfig.main_memory_cycles - MemoryConfig.bcache_hit_cycles
)


@dataclass(frozen=True, order=True)
class Score:
    """Lexicographic candidate score (field order IS the comparison)."""

    steady_mcpi: float
    cold_icache_misses: int
    rtt_us: float

    def key(self) -> Tuple[float, int, float]:
        return (self.steady_mcpi, self.cold_icache_misses, self.rtt_us)

    def to_json(self) -> Dict[str, float]:
        return {
            "steady_mcpi": self.steady_mcpi,
            "cold_icache_misses": self.cold_icache_misses,
            "rtt_us": self.rtt_us,
        }


def _clear_walk_templates(program: Program) -> None:
    # compiled walk templates embed absolute pcs; stale templates after a
    # re-layout would silently walk the OLD image
    program.__dict__.pop("_walk_templates", None)


class CellEvaluator:
    """Scores candidate placements for one (stack, config, opts) cell."""

    def __init__(
        self,
        stack: str,
        config: str,
        opts=None,
        *,
        settings: Optional[Settings] = None,
        base_seed: int = 42,
    ) -> None:
        from repro.harness.configs import build_configured_program
        from repro.harness.experiment import Experiment, _clone_events

        self.stack = stack
        self.config = config
        self.settings = settings if settings is not None else Settings.from_env()
        # search scores single samples; the guarded engines' per-sample
        # cross-check is the experiment layer's job, so each maps to its
        # primary (scores are bit-identical across all engines anyway)
        base_engine = self.settings.engine
        if base_engine == "reference":
            self.engine = "reference"
        elif base_engine in ("gensim", "guarded-gensim"):
            self.engine = "gensim"
        else:
            self.engine = "fast"
        self.base_seed = base_seed
        self._clone_events = _clone_events
        self._exp = Experiment(
            stack, config, opts, settings=self.settings, base_seed=base_seed
        )
        # private, uncached build: candidates re-lay this program out
        self.build = build_configured_program(stack, config, opts)
        self.program = self.build.program
        self.default_placements: Placements = {
            name: self.program.address_of(name)
            for name in self.program.names()
        }
        self._events, self._data_env = self._exp.capture_roundtrip(base_seed)
        # the block trace (function, block-offset) is layout-independent:
        # compute it once on the default layout and reuse for every
        # candidate's static cost
        walk = FastWalker(self.program, dict(self._data_env)).walk(
            self._clone_events(self._events)
        )
        self.block_trace = trace_block_touches(walk.trace, self.program)
        self.touch_freq: Dict[str, int] = {}
        for name, _ in self.block_trace:
            self.touch_freq[name] = self.touch_freq.get(name, 0) + 1
        # the trace digest is likewise layout-independent (the walk never
        # changes, only its pcs): one digest re-binds to every candidate
        # layout for the certified lower-bound prefilter
        from repro.analysis.bounds import digest_trace

        self.digest = digest_trace(walk.trace, self.program)
        self.evaluated = 0

    # ---- static prefilter ------------------------------------------- #

    def static_cost(self, placements: Placements) -> Tuple[int, int]:
        """(stall estimate, weighted likely-conflicts) — cheap, no walk.

        The first component replays the block trace through the shared
        steady-state placement-cost model twice — once at i-cache
        geometry, once at b-cache geometry, the latter scaled by its far
        costlier miss penalty (a replaced i-block usually hits the
        10-cycle b-cache, but a block evicted from the b-cache too pays
        main memory) — so pessimally spread layouts (BAD) rank as badly
        as they simulate.  The second lays the candidate out and asks
        the static conflict predictor for likely (mainline-vs-mainline)
        pairs, each weighted by the rarer partner's touch count.
        """
        from repro.analysis.conflicts import predict_conflicts

        assignment = {
            name: addr // BLOCK for name, addr in placements.items()
        }
        repl_i = steady_replacement_misses(
            self.block_trace, assignment, icache_blocks=NSETS
        )
        repl_b = steady_replacement_misses(
            self.block_trace, assignment, icache_blocks=NBSETS
        )
        repl = repl_i * ICACHE_MISS_CYCLES + repl_b * BCACHE_MISS_CYCLES
        self.program.layout(lambda p: dict(placements))
        predicted = predict_conflicts(self.program)
        weighted = 0
        for a, b in sorted(predicted.likely):
            fa = self.touch_freq.get(a, 0)
            fb = self.touch_freq.get(b, 0)
            if fa and fb:
                weighted += min(fa, fb)
        return (repl, weighted)

    def prefilter(
        self, candidates: Sequence[Placements], keep: int
    ) -> List[int]:
        """Indices of the ``keep`` statically-cheapest candidates.

        Stable: ties keep the earlier candidate, so generation order
        (incumbent first) survives into the simulated set.
        """
        costs = [self.static_cost(p) for p in candidates]
        ranked = sorted(range(len(candidates)), key=lambda i: (costs[i], i))
        return sorted(ranked[: max(0, keep)])

    def steady_lower_bound(self, placements: Placements) -> float:
        """Sound lower bound on this candidate's steady mCPI — no walk.

        Re-binds the cell's one trace digest to the candidate layout and
        runs the abstract interpreter (:mod:`repro.analysis.bounds`).
        The bound is *certified*: ``steady_lower_bound(p) <=
        score(p).steady_mcpi`` for every candidate, which is what lets
        the search driver drop provably-worse candidates without paying
        for their simulation.
        """
        from repro.analysis.bounds import bounds_from_digest

        return bounds_from_digest(self.digest, placements).steady.lower

    # ---- full evaluation -------------------------------------------- #

    def score(self, placements: Placements) -> Score:
        """Walk + simulate one candidate; bit-identical across engines."""
        self.program.layout(lambda p: dict(placements))
        _clear_walk_templates(self.program)
        events = self._clone_events(self._events)
        data_env = dict(self._data_env)
        if self.engine == "reference":
            walk = Walker(self.program, data_env).walk(list(events))
            cold = MachineSimulator().run(walk.trace)
            steady = MachineSimulator().run_steady_state(walk.trace)
        elif self.engine == "gensim":
            walk = FastWalker(self.program, data_env).walk(events)
            cold, steady = gensim_cold_and_steady_cached(walk.packed)
        else:
            walk = FastWalker(self.program, data_env).walk(events)
            cold, steady = simulate_cold_and_steady_cached(walk.packed)
        rtt = self._exp.latency.roundtrip_us(
            steady.time_us(), self._exp.server_processing_us
        )
        self.evaluated += 1
        return Score(steady.mcpi, cold.memory.icache.misses, rtt)

    def score_placements(
        self,
        batch: Sequence[Placements],
        *,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        report=None,
    ) -> List[Score]:
        """Score a batch, optionally on the self-healing process pool."""
        if not parallel or len(batch) < 2:
            return [self.score(p) for p in batch]
        from repro.harness.parallel import run_parallel_cells

        payloads = [
            (self.stack, self.config, self.build.opts, self.base_seed,
             self.engine, placements)
            for placements in batch
        ]
        labels = [(f"cand{i}", self.base_seed) for i in range(len(batch))]
        scores = run_parallel_cells(
            _score_candidate_worker, payloads, labels,
            max_workers=max_workers, report=report,
        )
        self.evaluated += len(batch)
        return scores

    def restore_default(self) -> None:
        """Put the private program back on its default layout."""
        self.program.layout(lambda p: dict(self.default_placements))
        _clear_walk_templates(self.program)


#: per-worker-process evaluator cache: pool workers score many candidates
#: of the same cell, so the build/capture cost is paid once per process
_worker_evaluators: Dict[Tuple, CellEvaluator] = {}


def _score_candidate_worker(
    stack: str,
    config: str,
    opts,
    base_seed: int,
    engine: str,
    placements: Placements,
    attempt: int = 0,
) -> Score:
    """Pool worker for :meth:`CellEvaluator.score_placements`."""
    key = (stack, config, opts, base_seed, engine)
    evaluator = _worker_evaluators.get(key)
    if evaluator is None:
        evaluator = CellEvaluator(
            stack, config, opts,
            settings=Settings(engine=engine), base_seed=base_seed,
        )
        _worker_evaluators[key] = evaluator
    return evaluator.score(placements)
