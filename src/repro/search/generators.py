"""Candidate genome generators and the mutation kernel.

Three seed families, then mutation:

* :func:`incumbent_genome` — the cell's current layout, re-expressed as
  a genome (address order, every gene pinned to its present i-cache
  set).  It anchors the search: the incumbent is always candidate zero,
  so the search can never return something worse than the baseline.
* :func:`affinity_genome` — a Pettis–Hansen-style ordering: functions
  that execute close together in the walked event stream are chained
  together by descending transition weight, so temporal neighbours
  become spatial neighbours and stop evicting each other.
* :func:`conflict_genome` — a greedy conflict-graph placer seeded from
  the observed :class:`repro.obs.conflicts.ConflictMatrix`: functions
  are pinned to i-cache sets in descending conflict-weight order, each
  choosing the set window that minimizes eviction weight against
  everything already placed.
* :func:`mutate` — the local-search kernel: swap two genes, rotate a
  slice, or re-pin a gene to a different set (or unpin it).

All generators are deterministic given their inputs; :func:`mutate`
draws every choice from the caller's seeded ``random.Random``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.core.layout import BLOCK
from repro.core.program import Program
from repro.core.walker import EnterEvent, Event
from repro.obs.conflicts import ConflictMatrix
from repro.search.artifact import NSETS, Gene, Genome


def call_sequence(events: Sequence[Event], program: Program) -> List[str]:
    """Final (clone/merge-resolved) function names, in invocation order."""
    out: List[str] = []
    for ev in events:
        if not isinstance(ev, EnterEvent):
            continue
        name = program.resolve_entry(ev.fn)
        if name in program:
            out.append(name)
    return out


def incumbent_genome(program: Program) -> Genome:
    """The current layout as a genome: address order, sets pinned.

    Reads the placements the program actually has (never reconstructs
    them from a strategy: gaps matter), so mutations start from the true
    incumbent neighbourhood.
    """
    names = sorted(program.names(), key=program.address_of)
    genes = []
    for name in names:
        offset = (
            (program.address_of(name) - program.text_base) // BLOCK
        ) % NSETS
        genes.append(Gene(name, offset))
    return tuple(genes)


def affinity_genome(call_seq: Sequence[str], program: Program) -> Genome:
    """Pettis–Hansen-style chain merging over the call transition graph.

    Edge weight = how often two functions are invoked back-to-back in
    the traced roundtrip.  Chains merge by descending weight, each merge
    joining chain *ends* only (interior functions keep their
    neighbours), ties broken lexicographically so the result is
    deterministic.  The merged order packs densely (no set pins): the
    win comes from adjacency, not from explicit set targeting.
    """
    weights: Dict[Tuple[str, str], int] = {}
    for a, b in zip(call_seq, call_seq[1:]):
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        weights[key] = weights.get(key, 0) + 1

    chain_of: Dict[str, List[str]] = {}
    seen: List[str] = []
    for name in call_seq:
        if name not in chain_of:
            chain_of[name] = [name]
            seen.append(name)

    edges = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    for (a, b), _ in edges:
        ca, cb = chain_of[a], chain_of[b]
        if ca is cb:
            continue
        # only end-to-end merges preserve established adjacencies
        if a not in (ca[0], ca[-1]) or b not in (cb[0], cb[-1]):
            continue
        if ca[-1] != a:
            ca.reverse()
        if cb[0] != b:
            cb.reverse()
        ca.extend(cb)
        for name in cb:
            chain_of[name] = ca
    # emit each chain once, in order of its earliest-invoked member
    order: List[str] = []
    emitted: set = set()
    for name in seen:
        chain = chain_of[name]
        if id(chain) in emitted:
            continue
        emitted.add(id(chain))
        order.extend(chain)
    return tuple(Gene(name) for name in order)


def conflict_genome(
    matrix: ConflictMatrix,
    program: Program,
    call_seq: Sequence[str],
) -> Genome:
    """Greedy set assignment by descending observed conflict weight.

    Each function claims the i-cache set window (its mainline footprint,
    wrapped) that minimizes the summed eviction weight against every
    already-placed conflict partner; ties prefer windows overlapping the
    fewest already-claimed sets, then the lowest set index.  Functions
    the trace touched but the matrix never saw conflict pack densely
    after the pinned ones, in invocation order.
    """
    weight: Dict[str, int] = {}
    pair_w: Dict[Tuple[str, str], int] = {}
    for (evictor, victim), count in matrix.counts.items():
        if evictor == victim:
            continue  # self-pressure is a capacity problem, not placement
        for name in (evictor, victim):
            if name in program:
                weight[name] = weight.get(name, 0) + count
        if evictor in program and victim in program:
            key = tuple(sorted((evictor, victim)))
            pair_w[key] = pair_w.get(key, 0) + count

    def conflict_with(a: str, b: str) -> int:
        return pair_w.get((a, b) if a < b else (b, a), 0)

    ordered = sorted(weight, key=lambda n: (-weight[n], n))
    claimed: Dict[str, frozenset] = {}
    pins: List[Tuple[str, int]] = []
    all_sets: frozenset = frozenset()
    for name in ordered:
        nblocks = max(1, -(-program.hot_size_of(name) // BLOCK))
        best: Tuple[int, int, int] = (1 << 60, 1 << 60, 0)
        for off in range(NSETS):
            window = frozenset((off + k) % NSETS for k in range(nblocks))
            cost = sum(
                conflict_with(name, other)
                for other, sets in claimed.items()
                if window & sets
            )
            crowding = len(window & all_sets)
            cand = (cost, crowding, off)
            if cand < best:
                best = cand
        off = best[2]
        window = frozenset((off + k) % NSETS for k in range(nblocks))
        claimed[name] = window
        all_sets |= window
        pins.append((name, off))

    # pack pinned genes in ascending set order so the monotone cursor
    # realizes each pin within one cache image instead of spiralling
    pins.sort(key=lambda p: (p[1], p[0]))
    genes = [Gene(name, off) for name, off in pins]
    placed = {name for name, _ in pins}
    for name in call_seq:
        if name not in placed:
            placed.add(name)
            genes.append(Gene(name))
    return tuple(genes)


#: mutation move weights: re-pinning is the strongest lever in a
#: direct-mapped cache, so it gets half the mass
_MOVES = ("swap", "rotate", "realign", "realign")


def mutate(genome: Genome, rng: random.Random) -> Genome:
    """One random local move on ``genome`` (swap / rotate / re-pin)."""
    if len(genome) < 2:
        return genome
    genes = list(genome)
    move = rng.choice(_MOVES)
    if move == "swap":
        i, j = rng.sample(range(len(genes)), 2)
        genes[i], genes[j] = genes[j], genes[i]
    elif move == "rotate":
        i = rng.randrange(len(genes) - 1)
        j = rng.randrange(i + 1, len(genes))
        k = rng.randrange(1, j - i + 1)
        window = genes[i : j + 1]
        genes[i : j + 1] = window[k:] + window[:k]
    else:  # realign
        i = rng.randrange(len(genes))
        if genes[i].set_offset is not None and rng.random() < 0.25:
            genes[i] = Gene(genes[i].name, None)
        else:
            genes[i] = Gene(genes[i].name, rng.randrange(NSETS))
    return tuple(genes)
