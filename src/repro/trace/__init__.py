"""Run-time tracing: the bridge between live protocol code and the IR.

While the Python protocol stack does its real work (parsing headers,
checksumming, updating TCP state), it records a stream of ENTER/EXIT events
— one per modeled function — carrying actual branch outcomes and simulated
object addresses.  :class:`~repro.trace.tracer.Tracer` collects the stream;
:class:`~repro.core.walker.Walker` later expands it into an instruction
trace over whichever build configuration is under test.
"""

from repro.trace.tracer import Tracer, NullTracer

__all__ = ["Tracer", "NullTracer"]
