"""Event recorder used by the protocol implementations.

Protocol methods wrap their modeled sections in :meth:`Tracer.scope`:

.. code-block:: python

    with stack.tracer.scope("tcp_demux", conds={...}, data={...}):
        ...  # real processing, including calls into the next layer

Nesting in the Python call tree produces a well-nested ENTER/EXIT stream,
which is exactly what the walker's dynamic-dispatch and path-inlining logic
expect.  Tracing is designed to be cheap to disable: experiments run many
warm-up roundtrips untraced, then capture a single measured roundtrip.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional

from repro.core.walker import EnterEvent, Event, ExitEvent, MarkEvent


def call_counts(events: List[Event]) -> Dict[str, int]:
    """Invocations per function in a captured event stream.

    Counts ENTER events only (one per dynamic call), so nested scopes and
    re-entries each count once.  Profile reports pair this with the
    per-function stall attribution to show cost *per invocation*.
    """
    out: Dict[str, int] = {}
    for ev in events:
        if isinstance(ev, EnterEvent):
            out[ev.fn] = out.get(ev.fn, 0) + 1
    return out


class Tracer:
    """Collects a well-nested stream of walker events."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.enabled: bool = False
        self._depth: int = 0

    # ------------------------------------------------------------------ #
    # recording                                                          #
    # ------------------------------------------------------------------ #

    @contextlib.contextmanager
    def scope(
        self,
        fn: str,
        conds: Optional[Dict[str, object]] = None,
        data: Optional[Dict[str, int]] = None,
    ) -> Iterator[None]:
        """Record ENTER on entry and EXIT on (any) exit."""
        if not self.enabled:
            yield
            return
        self.events.append(EnterEvent(fn, dict(conds or {}), dict(data or {})))
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self.events.append(ExitEvent(fn))

    def mark(self, name: str) -> None:
        if self.enabled:
            self.events.append(MarkEvent(name))

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Begin a fresh capture."""
        self.events = []
        self._depth = 0
        self.enabled = True

    def stop(self) -> List[Event]:
        """End the capture and return the recorded stream."""
        if self._depth:
            raise RuntimeError(f"tracer stopped inside {self._depth} open scope(s)")
        self.enabled = False
        events, self.events = self.events, []
        return events

    @property
    def depth(self) -> int:
        return self._depth


class NullTracer(Tracer):
    """A tracer that never records; handy default for untraced stacks."""

    @contextlib.contextmanager
    def scope(self, fn, conds=None, data=None):  # type: ignore[override]
        yield

    def mark(self, name: str) -> None:
        pass

    def start(self) -> None:
        raise RuntimeError("NullTracer cannot capture; use Tracer")
