"""Streaming traffic engine and demux-cache study.

``repro.traffic`` drives millions of packets across tens of thousands of
concurrent flows through the modeled receive path without ever
materializing a full trace: arrivals are sampled one packet at a time,
each packet's demux outcome (per-layer cache hit/miss, probe count,
collision-chain depth) selects one packed *segment* from a small,
lazily-walked library, and a transition-memoized stream machine advances
the persistent cache hierarchy one segment at a time — exactly, because
a segment replayed from a bit-identical machine state always produces
the same counter delta.

The front-end cache in front of the x-kernel demux map is pluggable
(see :mod:`repro.xkernel.map`), which is what turns the paper's fixed
one-entry design into a Jain-style caching-scheme comparison: the study
sweeps scheme x arrival mix x flow count and reports per-scheme hit
rates and steady-mCPI impact.
"""

from repro.traffic.spec import MIXES, STACKS, TrafficSpec
from repro.traffic.study import (
    TrafficPoint,
    TrafficStudy,
    run_traffic_point,
    run_traffic_study,
)

__all__ = [
    "MIXES",
    "STACKS",
    "TrafficSpec",
    "TrafficPoint",
    "TrafficStudy",
    "run_traffic_point",
    "run_traffic_study",
]
