"""Deterministic per-packet arrival sampling.

The sampler hands out one flow *slot* per packet.  Slots are stable
identities (slot 0 is the hottest under Zipf); the driver maps a slot to
its currently-bound flow, so connection churn can retire a flow without
disturbing the arrival distribution.  ``SCAN`` marks a packet carrying a
never-bound key.

Everything is driven by one ``random.Random(seed)`` so a spec describes
exactly one stream.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import List

from repro.traffic.spec import TrafficSpec

#: sentinel slot for scan-attack packets (no bound flow)
SCAN = -1


class ArrivalSampler:
    """Samples the next packet's flow slot according to the spec's mix."""

    def __init__(self, spec: TrafficSpec, rng: random.Random) -> None:
        self._rng = rng
        self._mix = spec.mix
        self._flows = spec.flows
        self._scan_fraction = spec.scan_fraction
        #: geometric burst continuation probability: mean = 1/(1-p)
        self._burst_p = 1.0 - 1.0 / spec.burst_mean
        self._burst_slot = 0
        self._in_burst = False
        if spec.mix in ("zipf", "bursty", "scan"):
            self._cum = self._zipf_cumulative(spec.flows, spec.zipf_s)
            self._total = self._cum[-1]
        else:
            self._cum = []  # bounded: empty for the uniform mix
            self._total = 0.0

    @staticmethod
    def _zipf_cumulative(flows: int, s: float) -> List[float]:
        cum: List[float] = []  # bounded: one entry per flow slot
        acc = 0.0
        for rank in range(flows):
            acc += 1.0 / (rank + 1) ** s
            cum.append(acc)
        return cum

    def _zipf_slot(self) -> int:
        # the min() guards the r*total==total float-rounding corner
        slot = bisect_right(self._cum, self._rng.random() * self._total)
        return min(slot, self._flows - 1)

    def next(self) -> int:
        """The next packet's slot (``SCAN`` for a scan-attack packet)."""
        mix = self._mix
        if mix == "uniform":
            return self._rng.randrange(self._flows)
        if mix == "zipf":
            return self._zipf_slot()
        if mix == "bursty":
            if self._in_burst and self._rng.random() < self._burst_p:
                return self._burst_slot
            self._burst_slot = self._zipf_slot()
            self._in_burst = True
            return self._burst_slot
        # scan: adversarial fresh keys over a Zipf background
        if self._rng.random() < self._scan_fraction:
            return SCAN
        return self._zipf_slot()
