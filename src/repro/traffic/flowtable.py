"""Per-population demux maps and the per-packet probe.

One :class:`FlowTables` instance models the receive path's demultiplexing
state for one protocol population (TCP or RPC): a tiny ethertype map, an
IP protocol map (TCP stack only), and the l4 flow map holding one binding
per live connection.  All three share the same front-end cache scheme, so
a scheme sweep changes every layer consistently.

``probe_packet`` performs real lookups (through
:class:`repro.xkernel.map.Map`, so every ``MapStats`` counter is genuine)
and classifies the packet into a :class:`LayerOutcome` triple the segment
library turns into trace conds.  The singleton maps (one binding, one
key ever probed) reach a per-resolve fixed point after their second
lookup — the cached entry is re-hit (or, with no cache, the one-entry
bucket is re-walked) with an identical stats delta every time — so their
steady resolves are replayed arithmetically instead of through the map
machinery; ``stats()`` folds the replayed deltas back in before
reporting, keeping the counters exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.traffic.spec import TrafficSpec
from repro.xkernel.map import Map, MapStats, make_scheme

#: (hit, probes, chain) per demux layer; ``probes`` is front-end cache
#: slots compared, ``chain`` is collision-chain links walked (capped)
LayerOutcome = Tuple[bool, int, int]

#: MapStats fields a resolve can move (binds/unbinds cannot)
_RESOLVE_FIELDS = (
    "resolves",
    "cache_hits",
    "probe_compares",
    "installs",
    "evictions",
    "invalidations",
    "chain_probes",
)


def _key(uid: int) -> bytes:
    return uid.to_bytes(8, "little")


class _SingletonProbe:
    """A one-binding map whose steady resolves are delta-replayed."""

    __slots__ = ("map", "outcome", "delta", "extra", "_seen")

    def __init__(self, m: Map) -> None:
        self.map = m
        self.outcome: Optional[LayerOutcome] = None
        self.delta: Optional[List[int]] = None
        self.extra = 0
        self._seen = 0

    def probe(self, cap: int) -> LayerOutcome:
        if self.delta is not None:
            self.extra += 1
            return self.outcome
        self._seen += 1
        if self._seen == 2:
            before = [getattr(self.map.stats, f) for f in _RESOLVE_FIELDS]
        self.map.resolve_or_none(_key(0))
        last = self.map.last
        outcome = (last.hit, last.probes, min(last.chain, cap))
        if self._seen == 2:
            # from here on every resolve repeats this one exactly
            self.delta = [
                getattr(self.map.stats, f) - b for f, b in zip(_RESOLVE_FIELDS, before)
            ]
            self.outcome = outcome
        return outcome

    def flush(self) -> None:
        if self.extra and self.delta is not None:
            for f, d in zip(_RESOLVE_FIELDS, self.delta):
                setattr(self.map.stats, f, getattr(self.map.stats, f) + d * self.extra)
            self.extra = 0


class FlowTables:
    """Demux maps for one population, all under one cache scheme."""

    #: singleton-map layers get a small realistic table
    SMALL_BUCKETS = 16

    def __init__(
        self, spec: TrafficSpec, scheme_spec: str, *, population: str
    ) -> None:
        self.population = population
        self._cap = spec.chain_cap
        eth = Map(self.SMALL_BUCKETS, scheme=make_scheme(scheme_spec))
        eth.bind(_key(0), "eth-proto")
        self._eth = _SingletonProbe(eth)
        self._ip: Optional[_SingletonProbe] = None
        if population == "tcp":
            ip = Map(self.SMALL_BUCKETS, scheme=make_scheme(scheme_spec))
            ip.bind(_key(0), "ip-proto")
            self._ip = _SingletonProbe(ip)
        self.l4 = Map(spec.buckets, scheme=make_scheme(scheme_spec))
        self.bound: set = set()

    @property
    def eth(self) -> Map:
        return self._eth.map

    @property
    def ip(self) -> Optional[Map]:
        return self._ip.map if self._ip is not None else None

    # ------------------------------------------------------------------ #
    # connection lifecycle                                               #
    # ------------------------------------------------------------------ #

    def open_flow(self, uid: int) -> None:
        self.l4.bind(_key(uid), uid)
        self.bound.add(uid)

    def close_flow(self, uid: int) -> None:
        self.l4.unbind(_key(uid))
        self.bound.discard(uid)

    # ------------------------------------------------------------------ #
    # the per-packet probe                                               #
    # ------------------------------------------------------------------ #

    def probe_packet(
        self, uid: int
    ) -> Tuple[LayerOutcome, Optional[LayerOutcome], LayerOutcome]:
        """Demultiplex one packet: (eth, ip-or-None, l4) outcomes.

        Unbound ``uid``s (scan packets, or the first packet racing a
        churned slot) miss every cache and walk their full collision
        chain — the not-found cost.
        """
        cap = self._cap
        eth = self._eth.probe(cap)
        ip = self._ip.probe(cap) if self._ip is not None else None
        self.l4.resolve_or_none(_key(uid))
        last = self.l4.last
        return eth, ip, (last.hit, last.probes, min(last.chain, cap))

    def probe_pre_l4(self) -> Tuple[LayerOutcome, Optional[LayerOutcome]]:
        """Demultiplex a packet that dies before the l4 lookup (a
        checksum reject): eth (and ip) pay their real probe costs, the
        flow map is never consulted."""
        cap = self._cap
        eth = self._eth.probe(cap)
        ip = self._ip.probe(cap) if self._ip is not None else None
        return eth, ip

    # ------------------------------------------------------------------ #
    # reporting                                                          #
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, MapStats]:
        self._eth.flush()
        layers = {"eth": self._eth.map.stats, "l4": self.l4.stats}
        if self._ip is not None:
            self._ip.flush()
            layers["ip"] = self._ip.map.stats
        return layers
