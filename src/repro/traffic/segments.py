"""Per-cell segment library: demux outcomes -> packed trace segments.

One real roundtrip is captured per cell; its receive-side demux span (the
balanced top-level ``eth_demux`` slice) is the template every packet's
trace is cut from.  A packet's classified demux outcome — per-layer cache
hit/miss, front-end probes, collision-chain depth, established-or-not —
is translated into overrides of the span's map conds, and the overridden
span is walked once into a :class:`~repro.arch.packed.PackedTrace`.  The
library memoizes walks per outcome tuple, so a million-packet stream
walks only its small segment alphabet (typically well under fifty).

Scheme probe costs ride on the *existing* modeled conds — the inlined
one-entry test (``map_cache_hit``) and the general routine's compare
loop/chain loop (``map_resolve.key_words`` / ``map_resolve.chain``) — so
the program image, and with it every committed golden table, is
untouched.  A non-one-entry front end is not inlinable (the paper inlines
the probe *because* it is a single compare), so its probes are charged in
the general routine: ``key_words`` trips = slots compared x key words,
plus a constant for hash-indexed schemes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.cpu import CpuStats
from repro.arch.fastsim import cpu_pass
from repro.arch.packed import PackedTrace
from repro.core.fastwalk import FastWalker
from repro.core.walker import EnterEvent, Event, ExitEvent, MarkEvent
from repro.harness.configs import build_configured_program_cached
from repro.harness.experiment import Experiment
from repro.traffic.flowtable import LayerOutcome
from repro.xkernel.map import CacheScheme, OneEntryCache

#: fn name of each demux layer's event, per stack
LAYER_FNS = {
    "tcpip": {"eth": "eth_demux", "ip": "ip_demux", "l4": "tcp_demux"},
    "rpc": {"eth": "eth_demux", "l4": "chan_demux"},
}

#: a packet's full classification: population ("tcp"/"rpc"), per-layer
#: outcomes, and whether the l4 flow is in its established state.  A
#: *faulted* packet appends a sixth element, the fault kind, so faulted
#: and pristine segments never share a memo key — and a rate-0 faulted
#: stream feeds exactly the pristine 5-tuples, making bit-identity with
#: pristine streams structural rather than incidental.
Variant = Tuple[str, LayerOutcome, Optional[LayerOutcome], LayerOutcome, bool]

#: anchor events a fault recipe can hang off, beyond the demux layers
#: (the RPC bid check is not a map layer but owns the checksum cond)
_FAULT_ANCHOR_FNS = {
    "tcpip": {"eth": "eth_demux", "l4": "tcp_demux"},
    "rpc": {"eth": "eth_demux", "bid": "bid_demux", "l4": "chan_demux"},
}

#: fault kind -> (anchor, cond overrides, prune) per stack.  Each recipe
#: forces the captured span down the protocol's real error path — the
#: same legs :data:`repro.protocols.models` declares as fault points —
#: and prunes the activation's nested events, exactly what the live
#: stack would not have executed after an early reject:
#:
#: * ``truncated_header``: the runt check rejects in ``eth_demux``
#:   before any demux map is consulted;
#: * ``corrupt_checksum``: verified after the full header pull-up, so
#:   eth (and ip) demux costs are paid before the l4 reject;
#: * ``duplicated_packet``: demuxed all the way, then suppressed on the
#:   no-progress leg (TCP: sequence/ack/data make no progress; RPC: the
#:   channel sequence check bounces the retransmission).
#:
#: ``bad_demux_key`` needs no recipe: a bad key *is* an unknown-key
#: lookup, byte-for-byte the trace a scan packet already walks, and
#: ``dropped_packet`` is send-side (no receive segment at all).
FAULT_RECIPES = {
    "tcpip": {
        "truncated_header": ("eth", (("runt", True),), True),
        "corrupt_checksum": ("l4", (("cksum_ok", False),), True),
        "duplicated_packet": (
            "l4",
            (
                ("seq_expected", False),
                ("ack_advances", False),
                ("data_present", False),
                ("delack_needed", False),
            ),
            True,
        ),
    },
    "rpc": {
        "truncated_header": ("eth", (("runt", True),), True),
        "corrupt_checksum": ("bid", (("bid_ok", False),), True),
        "duplicated_packet": ("l4", (("seq_match", False),), True),
    },
}

#: fault kinds modeled as cond-override segment variants (the receive
#: side of the PR 4 taxonomy minus bad_demux_key, which reuses the
#: pristine miss segment, and dropped_packet, which has none)
SEGMENT_FAULT_KINDS = ("corrupt_checksum", "truncated_header", "duplicated_packet")


def _prune_subtree(span: List[Event], idx: int) -> List[Event]:
    """``span`` without the events strictly inside ``span[idx]``'s
    activation (a forced early return never reaches the nested dynamic
    dispatches, so their enter/exit events must not be consumed)."""
    depth = 0
    for j in range(idx, len(span)):
        ev = span[j]
        if isinstance(ev, EnterEvent):
            depth += 1
        elif isinstance(ev, ExitEvent):
            depth -= 1
            if depth == 0:
                return span[: idx + 1] + span[j:]
    raise ValueError(f"no balanced activation at event {idx}")


def _snapshot_conds(events: List[Event]) -> None:
    """Freeze callable (lazy) conds to the value they produce now, so
    every variant walk sees the captured roundtrip's decisions."""
    for ev in events:
        if isinstance(ev, EnterEvent):
            for key, value in list(ev.conds.items()):
                if callable(value):
                    ev.conds[key] = value()


def _clone_span(events: List[Event]) -> List[Event]:
    out: List[Event] = []  # bounded: one entry per event of the span
    for ev in events:
        if isinstance(ev, EnterEvent):
            out.append(
                EnterEvent(
                    ev.fn,
                    {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in ev.conds.items()
                    },
                    dict(ev.data),
                )
            )
        elif isinstance(ev, ExitEvent):
            out.append(ExitEvent(ev.fn))
        else:
            out.append(MarkEvent(ev.name))
    return out


def extract_demux_span(events: List[Event]) -> List[Event]:
    """The balanced top-level ``eth_demux`` slice of a captured stream."""
    depth = 0
    start = None
    for i, ev in enumerate(events):
        if isinstance(ev, EnterEvent):
            if depth == 0 and ev.fn == "eth_demux":
                start = i
            depth += 1
        elif isinstance(ev, ExitEvent):
            depth -= 1
            if depth == 0 and start is not None:
                return events[start : i + 1]
    raise ValueError("captured stream has no balanced eth_demux span")


class SegmentLibrary:
    """Lazily-walked variant -> (PackedTrace, CpuStats) per cell.

    ``image_offset`` rebases the cell's whole image (code and data); the
    mixed-stack study loads the RPC image at a bcache-aligned offset so
    both images keep their native cache indices while competing for
    lines.
    """

    def __init__(
        self,
        stack: str,
        config: str,
        *,
        population: str,
        capture_seed: int = 42,
        image_offset: int = 0,
    ) -> None:
        if stack not in LAYER_FNS:
            raise ValueError(f"no demux layer model for stack {stack!r}")
        self.stack = stack
        self.config = config
        self.population = population
        self.image_offset = image_offset
        exp = Experiment(stack, config)
        events, self._data_env = exp.capture_roundtrip(capture_seed)
        self._build = build_configured_program_cached(stack, config, exp.opts)
        self._span = extract_demux_span(events)
        _snapshot_conds(self._span)
        self._layer_events = self._locate_layers()
        self._fault_anchors = self._locate_fault_anchors()
        #: captured key-compare loop trips per layer (words per key)
        self.key_words: Dict[str, int] = {
            layer: self._span[idx].conds["map_resolve.key_words"]
            for layer, idx in self._layer_events.items()
        }
        # bounded: one entry per (scheme, variant) of the small alphabet
        self._segments: Dict[tuple, Tuple[PackedTrace, CpuStats]] = {}

    def _locate_layers(self) -> Dict[str, int]:
        fns = LAYER_FNS[self.stack]
        located: Dict[str, int] = {}  # bounded: one entry per layer
        for i, ev in enumerate(self._span):
            if isinstance(ev, EnterEvent):
                for layer, fn in fns.items():
                    if ev.fn == fn:
                        located[layer] = i
        missing = set(fns) - set(located)
        if missing:
            raise ValueError(
                f"demux span of {self.stack} lacks layer event(s) {missing}"
            )
        return located

    def _locate_fault_anchors(self) -> Dict[str, int]:
        fns = _FAULT_ANCHOR_FNS[self.stack]
        located: Dict[str, int] = {}  # bounded: one entry per anchor
        for i, ev in enumerate(self._span):
            if isinstance(ev, EnterEvent):
                for anchor, fn in fns.items():
                    if ev.fn == fn and anchor not in located:
                        located[anchor] = i
        missing = set(fns) - set(located)
        if missing:
            raise ValueError(
                f"demux span of {self.stack} lacks fault anchor(s) {missing}"
            )
        return located

    # ------------------------------------------------------------------ #
    # cond overrides                                                     #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _apply_outcome(
        ev: EnterEvent, scheme: CacheScheme, outcome: LayerOutcome, key_words: int
    ) -> None:
        hit, probes, chain = outcome
        if isinstance(scheme, OneEntryCache):
            # the paper's inlined single-compare probe
            ev.conds["map_cache_hit"] = hit
            if not hit:
                ev.conds["map_resolve.cache_hit"] = False
                ev.conds["map_resolve.key_words"] = key_words
                ev.conds["map_resolve.chain"] = chain
        else:
            # any other front end lives in the general routine
            ev.conds["map_cache_hit"] = False
            ev.conds["map_resolve.cache_hit"] = hit
            ev.conds["map_resolve.key_words"] = scheme.probe_trips(probes, key_words)
            ev.conds["map_resolve.chain"] = chain

    def segment(
        self, variant: Variant, scheme: CacheScheme
    ) -> Tuple[PackedTrace, CpuStats]:
        """The packed segment (and its stateless CPU stats) for one
        classified packet; walked on first use, memoized after.

        A 6-tuple variant carries a fault kind in its last element: the
        matching :data:`FAULT_RECIPES` entry forces the anchor event's
        conds onto the error leg and prunes the nested events the early
        return never executes.  Layer outcomes are applied only to the
        layers the faulted packet still reaches (the rest were never
        probed), so faulted segments stay walkable and memoizable
        exactly like pristine ones.
        """
        key = (scheme.name, variant)
        cached = self._segments.get(key)
        if cached is not None:
            return cached
        _population, eth, ip, l4, established = variant[:5]
        fault = variant[5] if len(variant) > 5 else None
        span = _clone_span(self._span)
        alive_before = len(span)  # layer events at indexes below survive
        if fault is not None:
            recipes = FAULT_RECIPES[self.stack]
            if fault not in recipes:
                raise ValueError(
                    f"no segment recipe for fault kind {fault!r} "
                    f"on stack {self.stack!r}"
                )
            anchor, overrides, prune = recipes[fault]
            idx = self._fault_anchors[anchor]
            anchor_ev = span[idx]
            for cond_key, value in overrides:
                anchor_ev.conds[cond_key] = value
            if prune:
                span = _prune_subtree(span, idx)
                alive_before = idx + 1
        eth_idx = self._layer_events["eth"]
        if eth_idx < alive_before:
            self._apply_outcome(span[eth_idx], scheme, eth, self.key_words["eth"])
        ip_idx = self._layer_events.get("ip")
        if ip is not None and ip_idx is not None and ip_idx < alive_before:
            self._apply_outcome(span[ip_idx], scheme, ip, self.key_words["ip"])
        l4_idx = self._layer_events["l4"]
        if l4_idx < alive_before:
            l4_ev = span[l4_idx]
            self._apply_outcome(l4_ev, scheme, l4, self.key_words["l4"])
            if "established" in l4_ev.conds:
                l4_ev.conds["established"] = established
        walk = FastWalker(self._build.program, self._data_env).walk(span)
        packed = walk.packed.shifted(self.image_offset)
        entry = (packed, cpu_pass(packed))
        self._segments[key] = entry
        return entry

    @property
    def alphabet_size(self) -> int:
        return len(self._segments)
