"""Per-cell segment library: demux outcomes -> packed trace segments.

One real roundtrip is captured per cell; its receive-side demux span (the
balanced top-level ``eth_demux`` slice) is the template every packet's
trace is cut from.  A packet's classified demux outcome — per-layer cache
hit/miss, front-end probes, collision-chain depth, established-or-not —
is translated into overrides of the span's map conds, and the overridden
span is walked once into a :class:`~repro.arch.packed.PackedTrace`.  The
library memoizes walks per outcome tuple, so a million-packet stream
walks only its small segment alphabet (typically well under fifty).

Scheme probe costs ride on the *existing* modeled conds — the inlined
one-entry test (``map_cache_hit``) and the general routine's compare
loop/chain loop (``map_resolve.key_words`` / ``map_resolve.chain``) — so
the program image, and with it every committed golden table, is
untouched.  A non-one-entry front end is not inlinable (the paper inlines
the probe *because* it is a single compare), so its probes are charged in
the general routine: ``key_words`` trips = slots compared x key words,
plus a constant for hash-indexed schemes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.cpu import CpuStats
from repro.arch.fastsim import cpu_pass
from repro.arch.packed import PackedTrace
from repro.core.fastwalk import FastWalker
from repro.core.walker import EnterEvent, Event, ExitEvent, MarkEvent
from repro.harness.configs import build_configured_program_cached
from repro.harness.experiment import Experiment
from repro.traffic.flowtable import LayerOutcome
from repro.xkernel.map import CacheScheme, OneEntryCache

#: fn name of each demux layer's event, per stack
LAYER_FNS = {
    "tcpip": {"eth": "eth_demux", "ip": "ip_demux", "l4": "tcp_demux"},
    "rpc": {"eth": "eth_demux", "l4": "chan_demux"},
}

#: a packet's full classification: population ("tcp"/"rpc"), per-layer
#: outcomes, and whether the l4 flow is in its established state
Variant = Tuple[str, LayerOutcome, Optional[LayerOutcome], LayerOutcome, bool]


def _snapshot_conds(events: List[Event]) -> None:
    """Freeze callable (lazy) conds to the value they produce now, so
    every variant walk sees the captured roundtrip's decisions."""
    for ev in events:
        if isinstance(ev, EnterEvent):
            for key, value in list(ev.conds.items()):
                if callable(value):
                    ev.conds[key] = value()


def _clone_span(events: List[Event]) -> List[Event]:
    out: List[Event] = []
    for ev in events:
        if isinstance(ev, EnterEvent):
            out.append(
                EnterEvent(
                    ev.fn,
                    {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in ev.conds.items()
                    },
                    dict(ev.data),
                )
            )
        elif isinstance(ev, ExitEvent):
            out.append(ExitEvent(ev.fn))
        else:
            out.append(MarkEvent(ev.name))
    return out


def extract_demux_span(events: List[Event]) -> List[Event]:
    """The balanced top-level ``eth_demux`` slice of a captured stream."""
    depth = 0
    start = None
    for i, ev in enumerate(events):
        if isinstance(ev, EnterEvent):
            if depth == 0 and ev.fn == "eth_demux":
                start = i
            depth += 1
        elif isinstance(ev, ExitEvent):
            depth -= 1
            if depth == 0 and start is not None:
                return events[start : i + 1]
    raise ValueError("captured stream has no balanced eth_demux span")


class SegmentLibrary:
    """Lazily-walked variant -> (PackedTrace, CpuStats) per cell.

    ``image_offset`` rebases the cell's whole image (code and data); the
    mixed-stack study loads the RPC image at a bcache-aligned offset so
    both images keep their native cache indices while competing for
    lines.
    """

    def __init__(
        self,
        stack: str,
        config: str,
        *,
        population: str,
        capture_seed: int = 42,
        image_offset: int = 0,
    ) -> None:
        if stack not in LAYER_FNS:
            raise ValueError(f"no demux layer model for stack {stack!r}")
        self.stack = stack
        self.config = config
        self.population = population
        self.image_offset = image_offset
        exp = Experiment(stack, config)
        events, self._data_env = exp.capture_roundtrip(capture_seed)
        self._build = build_configured_program_cached(stack, config, exp.opts)
        self._span = extract_demux_span(events)
        _snapshot_conds(self._span)
        self._layer_events = self._locate_layers()
        #: captured key-compare loop trips per layer (words per key)
        self.key_words: Dict[str, int] = {
            layer: self._span[idx].conds["map_resolve.key_words"]
            for layer, idx in self._layer_events.items()
        }
        self._segments: Dict[tuple, Tuple[PackedTrace, CpuStats]] = {}

    def _locate_layers(self) -> Dict[str, int]:
        fns = LAYER_FNS[self.stack]
        located: Dict[str, int] = {}
        for i, ev in enumerate(self._span):
            if isinstance(ev, EnterEvent):
                for layer, fn in fns.items():
                    if ev.fn == fn:
                        located[layer] = i
        missing = set(fns) - set(located)
        if missing:
            raise ValueError(
                f"demux span of {self.stack} lacks layer event(s) {missing}"
            )
        return located

    # ------------------------------------------------------------------ #
    # cond overrides                                                     #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _apply_outcome(
        ev: EnterEvent, scheme: CacheScheme, outcome: LayerOutcome, key_words: int
    ) -> None:
        hit, probes, chain = outcome
        if isinstance(scheme, OneEntryCache):
            # the paper's inlined single-compare probe
            ev.conds["map_cache_hit"] = hit
            if not hit:
                ev.conds["map_resolve.cache_hit"] = False
                ev.conds["map_resolve.key_words"] = key_words
                ev.conds["map_resolve.chain"] = chain
        else:
            # any other front end lives in the general routine
            ev.conds["map_cache_hit"] = False
            ev.conds["map_resolve.cache_hit"] = hit
            ev.conds["map_resolve.key_words"] = scheme.probe_trips(probes, key_words)
            ev.conds["map_resolve.chain"] = chain

    def segment(
        self, variant: Variant, scheme: CacheScheme
    ) -> Tuple[PackedTrace, CpuStats]:
        """The packed segment (and its stateless CPU stats) for one
        classified packet; walked on first use, memoized after."""
        key = (scheme.name, variant)
        cached = self._segments.get(key)
        if cached is not None:
            return cached
        _population, eth, ip, l4, established = variant
        span = _clone_span(self._span)
        self._apply_outcome(
            span[self._layer_events["eth"]], scheme, eth, self.key_words["eth"]
        )
        if ip is not None and "ip" in self._layer_events:
            self._apply_outcome(
                span[self._layer_events["ip"]], scheme, ip, self.key_words["ip"]
            )
        l4_ev = span[self._layer_events["l4"]]
        self._apply_outcome(l4_ev, scheme, l4, self.key_words["l4"])
        if "established" in l4_ev.conds:
            l4_ev.conds["established"] = established
        walk = FastWalker(self._build.program, self._data_env).walk(span)
        packed = walk.packed.shifted(self.image_offset)
        entry = (packed, cpu_pass(packed))
        self._segments[key] = entry
        return entry

    @property
    def alphabet_size(self) -> int:
        return len(self._segments)
