"""Traffic workload specification.

A :class:`TrafficSpec` pins down one deterministic packet stream: the
protocol stack(s) it exercises, how many packets arrive over how many
concurrent flows, the arrival mix, connection churn, and the seeds.  Two
runs of the same spec — on any engine — see the identical stream.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

#: arrival mixes (Jain's locality regimes plus an adversarial scan)
MIXES = ("uniform", "zipf", "bursty", "scan")

#: ``mixed`` interleaves TCP and RPC flows in one stream; the RPC image
#: is loaded at a bcache-aligned offset so both images keep their native
#: cache geometry while competing for the same lines
STACKS = ("tcpip", "rpc", "mixed")


@dataclass(frozen=True)
class TrafficSpec:
    stack: str = "tcpip"
    config: str = "OUT"
    #: stream length; the acceptance-grade sweeps run >= 1M per point
    packets: int = 1_000_000
    #: concurrently-bound flows (the l4 demux map population)
    flows: int = 10_000
    mix: str = "zipf"
    #: Zipf exponent for the ``zipf``/``bursty``/``scan`` background load
    zipf_s: float = 1.1
    #: mean geometric burst length for the ``bursty`` mix
    burst_mean: int = 16
    #: per-packet probability that one bound flow is torn down and a
    #: fresh one takes its slot (connection churn)
    churn: float = 0.0
    #: for the ``scan`` mix: fraction of packets carrying never-bound
    #: keys (an address-scan attack; they miss every cache and walk a
    #: full collision chain)
    scan_fraction: float = 0.5
    #: for ``stack="mixed"``: fraction of flow slots carrying RPC traffic
    rpc_fraction: float = 0.25
    seed: int = 0
    #: backing hash-table size of the l4 demux map (power of two)
    buckets: int = 4096
    #: leading packets excluded from the steady-state window
    warmup_packets: int = 10_000
    #: collision-chain depth cap when classifying a packet into a trace
    #: segment (bounds the segment alphabet; deeper walks are charged at
    #: the cap)
    chain_cap: int = 8
    #: trace-capture seed for the segment library's roundtrip
    capture_seed: int = 42
    #: LRU cap on the stream's interned machine states (graceful
    #: degradation: eviction trades memo reuse for bounded memory;
    #: totals stay exact either way)
    memo_state_cap: int = 16_384
    #: LRU cap on the stream's (state, segment) transition-delta table
    memo_edge_cap: int = 65_536

    def validate(self) -> None:
        if self.stack not in STACKS:
            raise ValueError(f"stack must be one of {STACKS}, got {self.stack!r}")
        if self.mix not in MIXES:
            raise ValueError(f"mix must be one of {MIXES}, got {self.mix!r}")
        if self.packets <= 0:
            raise ValueError("packets must be positive")
        if self.flows <= 0:
            raise ValueError("flows must be positive")
        if self.buckets <= 0 or self.buckets & (self.buckets - 1):
            raise ValueError("buckets must be a positive power of two")
        if not 0.0 <= self.churn < 1.0:
            raise ValueError("churn must be in [0, 1)")
        if not 0.0 <= self.scan_fraction <= 1.0:
            raise ValueError("scan_fraction must be in [0, 1]")
        if not 0.0 <= self.rpc_fraction <= 1.0:
            raise ValueError("rpc_fraction must be in [0, 1]")
        if self.warmup_packets < 0 or self.warmup_packets >= self.packets:
            raise ValueError("warmup_packets must be in [0, packets)")
        if self.burst_mean <= 0:
            raise ValueError("burst_mean must be positive")
        if self.chain_cap <= 0:
            raise ValueError("chain_cap must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.memo_state_cap < 2:
            raise ValueError("memo_state_cap must be >= 2")
        if self.memo_edge_cap < 1:
            raise ValueError("memo_edge_cap must be positive")

    def with_(self, **kwargs) -> "TrafficSpec":
        return replace(self, **kwargs)

    def to_json(self) -> dict:
        return asdict(self)
