"""The streaming simulator: exact transition-memoized segment replay.

A dedicated machine (fast or gensim) simulates the packet stream one
packed segment at a time.  Because both engines are *exact* — a pass
from a bit-identical hierarchy state always produces the identical
counter delta and exit state — the stream is a walk over a small
deterministic transition graph: nodes are interned machine states,
edges are (state, segment) pairs.  Each edge is simulated **once**; from
then on, feeding that segment in that state costs one dict lookup and a
counter increment.  Totals are accumulated per phase as
``sum(fire_count x delta)`` per edge, which is exactly what sequential
simulation would have accumulated.

This is why the engine can push >1M packets/s through a cycle-exact
model, and why fast and gensim produce bit-identical tables: they agree
edge-by-edge, and the edge counts are a function of the spec alone.

Both memo tables are **bounded**.  The interned-state table and the
edge-delta table are LRU caches (``state_cap`` / ``edge_cap``); on
eviction an edge's outstanding phase counts are folded into the phase's
base totals first, so totals stay exact no matter how small the caps
are — eviction only trades memo reuse (more novel passes) for bounded
memory.  Every re-simulation of a previously-evicted edge is
cross-checked against the delta recorded at eviction time
(:class:`StreamExactnessError` on mismatch), turning the exactness
assumption the whole memo rests on into a runtime invariant.

A per-stream watchdog (``watchdog_s``) bounds the cumulative wall-clock
time spent inside memo machinery (novel passes: restore, simulate,
snapshot, intern).  When exceeded the stream *degrades* to plain
segment-by-segment simulation on the persistent machine — slower, never
hung, and still bit-exact: sequential simulation from the current
machine state is precisely what the memo replays.
"""

from __future__ import annotations

import time
from collections import Counter, OrderedDict
from itertools import count
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.arch.simulator import AlphaConfig
from repro.arch.fastsim import FastMachine

#: process-unique stream serials: gensim kernels are memoized globally
#: and replay transitions by provenance token, so a token must never
#: mean two different physical states across streams in one process
_STREAM_SERIAL = count()

#: counter indices in the engines' shared 15-counter layout
_STALL = 11
_INSTR = 12


class StreamExactnessError(RuntimeError):
    """Re-simulating an evicted edge produced a different delta.

    The transition memo is only sound if a (state, segment) pass is a
    pure function of the interned state; a mismatch here means an engine
    violated that and every total downstream would be suspect.
    """


def make_stream_machine(engine: str, config: Optional[AlphaConfig] = None):
    """A persistent machine for stream simulation.

    The guarded engines map to their primary (the cross-check harness
    wraps whole experiments, not stream edges); the reference engine has
    no packed-segment pass and is refused with a pointer at the oracle
    tests that cover it.
    """
    if engine in ("fast", "guarded"):
        return FastMachine(config)
    if engine in ("gensim", "guarded-gensim"):
        from repro.gensim.machine import GenMachine

        return GenMachine(config)
    raise ValueError(
        f"traffic streaming needs a packed-segment engine (fast or gensim), "
        f"got {engine!r}; the reference engine is exercised by the oracle "
        "tests in tests/traffic instead"
    )


class TransitionStream:
    """Exact streaming over one persistent machine via edge memoization.

    ``feed(seg_key, packed_fn)`` advances the logical stream by one
    segment and returns the segment's exact 15-counter delta.
    ``packed_fn`` is only called when the edge is novel (the segment
    library walks lazily).  ``start_phase`` opens a new counting window
    (warm-up vs steady) without touching machine state.
    """

    def __init__(
        self,
        machine,
        *,
        state_cap: int = 16_384,
        edge_cap: int = 65_536,
        watchdog_s: Optional[float] = None,
    ) -> None:
        if state_cap < 2:
            raise ValueError("state_cap must be >= 2")
        if edge_cap < 1:
            raise ValueError("edge_cap must be positive")
        self._m = machine
        self._is_gen = not isinstance(machine, FastMachine)
        self._serial = next(_STREAM_SERIAL)
        self._state_cap = state_cap
        self._edge_cap = edge_cap
        self._watchdog_s = watchdog_s
        self._memo_spent = 0.0
        #: state interning: snapshot -> id (0 is the cold state; ids are
        #: monotone and never reused, so gensim restore tokens stay
        #: unambiguous across evictions)
        self._next_id = 1
        # bounded: LRU-evicted against state_cap (see _intern)
        self._state_ids: Dict[tuple, int] = {}
        # bounded: LRU-evicted against state_cap (see _intern)
        self._snapshots: Dict[int, tuple] = {}
        # bounded: LRU order of the evictable interned states
        self._state_lru: "OrderedDict[int, None]" = OrderedDict()
        #: (state_id, seg_key) -> (next_state_id, delta tuple)
        # bounded: LRU-evicted against edge_cap (see _novel_pass)
        self._edges: "OrderedDict[tuple, Tuple[int, Tuple[int, ...]]]" = OrderedDict()
        #: reverse indexes so a state eviction can drop its edges
        # bounded: one entry per live interned state (state_cap)
        self._in_edges: Dict[int, Set[tuple]] = {}
        # bounded: one entry per live interned state (state_cap)
        self._out_edges: Dict[int, Set[tuple]] = {}
        #: delta recorded when an edge was evicted, for the exactness
        #: cross-check on its re-simulation
        # bounded: FIFO-capped at edge_cap entries (see _drop_edge)
        self._evicted_deltas: "OrderedDict[tuple, Tuple[int, ...]]" = OrderedDict()
        self._cur = 0
        self._phys = 0
        self.novel_passes = 0
        self.edge_evictions = 0
        self.state_evictions = 0
        self.exactness_checks = 0
        self._interned = 0
        self._degraded = False
        #: distinct segment keys ever fed
        # bounded: the segment library's variant alphabet
        self._seg_keys: Set = set()
        #: per-phase accounting: base totals absorb evicted (and
        #: degraded-mode) deltas; live edges stay as counts so the hot
        #: path is one Counter increment
        # bounded: one entry per phase (warmup/steady)
        self._phases: Dict[str, Tuple[List[int], Counter, Counter]] = {}
        self._base: List[int] = [0] * 15
        # bounded: flushed into _base when its edge is evicted
        self._ecounts: Counter = Counter()
        # bounded: the segment library's variant alphabet
        self._segs: Counter = Counter()

    # ------------------------------------------------------------------ #
    # phases                                                             #
    # ------------------------------------------------------------------ #

    def start_phase(self, name: str) -> None:
        self._base = [0] * 15
        # bounded: flushed into _base when its edge is evicted
        self._ecounts = Counter()
        # bounded: the segment library's variant alphabet
        self._segs = Counter()
        self._phases[name] = (self._base, self._ecounts, self._segs)

    # ------------------------------------------------------------------ #
    # streaming                                                          #
    # ------------------------------------------------------------------ #

    def _restore(self, state_id: int) -> None:
        if state_id == 0:
            self._m.reset()
        elif self._is_gen:
            # the serial keeps tokens unique across streams: without it a
            # globally-memoized kernel would replay another stream's
            # state-3 transition for this stream's (different) state 3
            self._m.restore_state(
                self._snapshots[state_id],
                token=f"stream{self._serial}:{state_id}",
            )
        else:
            self._m.restore_state(self._snapshots[state_id])
        self._phys = state_id

    def _intern(self, snap: tuple) -> int:
        state_id = self._state_ids.get(snap)
        if state_id is not None:
            self._state_lru.move_to_end(state_id)
            return state_id
        state_id = self._next_id
        self._next_id += 1
        self._state_ids[snap] = state_id
        self._snapshots[state_id] = snap
        self._state_lru[state_id] = None
        self._interned += 1
        if len(self._snapshots) > self._state_cap:
            self._evict_state(protect=(self._cur, self._phys, state_id))
        return state_id

    def _evict_state(self, protect: Tuple[int, ...]) -> None:
        """Drop the least-recently-touched unprotected state and every
        edge into or out of it (their memo entries would dangle)."""
        victim = None
        for state_id in self._state_lru:
            if state_id not in protect:
                victim = state_id
                break
        if victim is None:
            return  # every resident state is in use right now
        del self._state_lru[victim]
        snap = self._snapshots.pop(victim)
        del self._state_ids[snap]
        self.state_evictions += 1
        for edge in self._in_edges.pop(victim, ()):
            self._drop_edge(edge)
        for edge in self._out_edges.pop(victim, ()):
            self._drop_edge(edge)

    def _drop_edge(self, edge: tuple) -> None:
        """Evict one memoized edge, folding its outstanding phase counts
        into the base totals (exactness survives eviction) and recording
        its delta for the re-simulation cross-check."""
        entry = self._edges.pop(edge, None)
        if entry is None:
            return
        next_id, delta = entry
        out = self._out_edges.get(edge[0])
        if out is not None:
            out.discard(edge)
        ins = self._in_edges.get(next_id)
        if ins is not None:
            ins.discard(edge)
        for base, ecounts, _segs in self._phases.values():
            fired = ecounts.pop(edge, 0)
            if fired:
                for i in range(15):
                    base[i] += fired * delta[i]
        self._evicted_deltas[edge] = delta
        if len(self._evicted_deltas) > self._edge_cap:
            self._evicted_deltas.popitem(last=False)
        self.edge_evictions += 1

    def _novel_pass(self, edge: tuple, packed_fn: Callable) -> Tuple[int, ...]:
        if self._phys != self._cur:
            self._restore(self._cur)
        t0 = time.perf_counter() if self._watchdog_s is not None else 0.0
        delta = tuple(self._m.mem_delta(packed_fn()))
        next_id = self._intern(self._m.snapshot_state())
        prior = self._evicted_deltas.pop(edge, None)
        if prior is not None:
            self.exactness_checks += 1
            if prior != delta:
                raise StreamExactnessError(
                    f"edge {edge!r} re-simulated to a different delta than "
                    f"recorded at eviction: {prior} != {delta}"
                )
        self._edges[edge] = (next_id, delta)
        self._out_edges.setdefault(edge[0], set()).add(edge)
        self._in_edges.setdefault(next_id, set()).add(edge)
        while len(self._edges) > self._edge_cap:
            self._drop_edge(next(iter(self._edges)))
        self._cur = self._phys = next_id
        self.novel_passes += 1
        if self._watchdog_s is not None:
            self._memo_spent += time.perf_counter() - t0
            if self._memo_spent > self._watchdog_s:
                # too long inside memo machinery: fall back to plain
                # sequential simulation (machine is at _cur already)
                self._degraded = True
        return delta

    def feed(self, seg_key, packed_fn: Callable) -> Tuple[int, ...]:
        """Advance the stream one segment; return its exact delta."""
        self._seg_keys.add(seg_key)
        if self._degraded:
            delta = tuple(self._m.mem_delta(packed_fn()))
            base = self._base
            for i in range(15):
                base[i] += delta[i]
            self._segs[seg_key] += 1
            return delta
        edge = (self._cur, seg_key)
        known = self._edges.get(edge)
        if known is None:
            delta = self._novel_pass(edge, packed_fn)
        else:
            self._edges.move_to_end(edge)
            next_id = known[0]
            self._state_lru.move_to_end(next_id)
            self._cur = next_id
            delta = known[1]
        self._ecounts[edge] += 1
        self._segs[seg_key] += 1
        return delta

    # ------------------------------------------------------------------ #
    # accounting                                                         #
    # ------------------------------------------------------------------ #

    @property
    def degraded(self) -> bool:
        """True once the watchdog forced segment-by-segment simulation."""
        return self._degraded

    @property
    def memo_evictions(self) -> int:
        """Memo entries dropped to stay under the caps (states + edges)."""
        return self.state_evictions + self.edge_evictions

    @property
    def distinct_states(self) -> int:
        """Machine states interned over the stream's lifetime (including
        the cold state; an evicted-then-revisited state counts again)."""
        return self._interned + 1

    @property
    def segment_alphabet(self) -> int:
        """Distinct segments this stream simulated (library-independent)."""
        return len(self._seg_keys)

    def phase_counters(self, name: str) -> List[int]:
        """The 15-counter total the machine would have accumulated over
        the phase's segments: base totals (evicted edges, degraded-mode
        passes) plus fire counts x delta over the live edges."""
        base, ecounts, _segs = self._phases[name]
        totals = list(base)
        for edge, fired in ecounts.items():
            delta = self._edges[edge][1]
            for i in range(15):
                totals[i] += fired * delta[i]
        return totals

    def phase_seg_counts(self, name: str) -> Counter:
        """Fire counts per segment key (for CPU-side aggregation)."""
        _base, _ecounts, segs = self._phases[name]
        return Counter(segs)

    @staticmethod
    def stall_and_instructions(counters: List[int]) -> Tuple[int, int]:
        return counters[_STALL], counters[_INSTR]
