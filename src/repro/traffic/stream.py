"""The streaming simulator: exact transition-memoized segment replay.

A dedicated machine (fast or gensim) simulates the packet stream one
packed segment at a time.  Because both engines are *exact* — a pass
from a bit-identical hierarchy state always produces the identical
counter delta and exit state — the stream is a walk over a small
deterministic transition graph: nodes are interned machine states,
edges are (state, segment) pairs.  Each edge is simulated **once**; from
then on, feeding that segment in that state costs one dict lookup and a
counter increment.  Totals are reconstructed at the end as
``sum(fire_count x delta)`` per edge, which is exactly what sequential
simulation would have accumulated.

This is why the engine can push >1M packets/s through a cycle-exact
model, and why fast and gensim produce bit-identical tables: they agree
edge-by-edge, and the edge counts are a function of the spec alone.
"""

from __future__ import annotations

from collections import Counter
from itertools import count
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.simulator import AlphaConfig
from repro.arch.fastsim import FastMachine

#: process-unique stream serials: gensim kernels are memoized globally
#: and replay transitions by provenance token, so a token must never
#: mean two different physical states across streams in one process
_STREAM_SERIAL = count()

#: counter indices in the engines' shared 15-counter layout
_STALL = 11
_INSTR = 12


def make_stream_machine(engine: str, config: Optional[AlphaConfig] = None):
    """A persistent machine for stream simulation.

    The guarded engines map to their primary (the cross-check harness
    wraps whole experiments, not stream edges); the reference engine has
    no packed-segment pass and is refused with a pointer at the oracle
    tests that cover it.
    """
    if engine in ("fast", "guarded"):
        return FastMachine(config)
    if engine in ("gensim", "guarded-gensim"):
        from repro.gensim.machine import GenMachine

        return GenMachine(config)
    raise ValueError(
        f"traffic streaming needs a packed-segment engine (fast or gensim), "
        f"got {engine!r}; the reference engine is exercised by the oracle "
        "tests in tests/traffic instead"
    )


class TransitionStream:
    """Exact streaming over one persistent machine via edge memoization.

    ``feed(seg_key, packed_fn)`` advances the logical stream by one
    segment.  ``packed_fn`` is only called when the edge is novel (the
    segment library walks lazily).  ``start_phase`` opens a new counting
    window (warm-up vs steady) without touching machine state.
    """

    def __init__(self, machine) -> None:
        self._m = machine
        self._is_gen = not isinstance(machine, FastMachine)
        self._serial = next(_STREAM_SERIAL)
        #: state interning: snapshot -> small int (0 is the cold state)
        self._state_ids: Dict[tuple, int] = {}
        self._snapshots: List[Optional[tuple]] = [None]
        #: (state_id, seg_key) -> (next_state_id, delta tuple)
        self._edges: Dict[tuple, Tuple[int, Tuple[int, ...]]] = {}
        self._cur = 0
        self._phys = 0
        self.novel_passes = 0
        self._phases: Dict[str, Counter] = {}
        self._counts: Counter = Counter()

    # ------------------------------------------------------------------ #
    # phases                                                             #
    # ------------------------------------------------------------------ #

    def start_phase(self, name: str) -> None:
        self._counts = Counter()
        self._phases[name] = self._counts

    # ------------------------------------------------------------------ #
    # streaming                                                          #
    # ------------------------------------------------------------------ #

    def _restore(self, state_id: int) -> None:
        if state_id == 0:
            self._m.reset()
        elif self._is_gen:
            # the serial keeps tokens unique across streams: without it a
            # globally-memoized kernel would replay another stream's
            # state-3 transition for this stream's (different) state 3
            self._m.restore_state(
                self._snapshots[state_id],
                token=f"stream{self._serial}:{state_id}",
            )
        else:
            self._m.restore_state(self._snapshots[state_id])
        self._phys = state_id

    def _intern(self, snap: tuple) -> int:
        state_id = self._state_ids.get(snap)
        if state_id is None:
            state_id = len(self._snapshots)
            self._state_ids[snap] = state_id
            self._snapshots.append(snap)
        return state_id

    def feed(self, seg_key, packed_fn: Callable) -> None:
        edge = (self._cur, seg_key)
        known = self._edges.get(edge)
        if known is None:
            if self._phys != self._cur:
                self._restore(self._cur)
            delta = tuple(self._m.mem_delta(packed_fn()))
            next_id = self._intern(self._m.snapshot_state())
            self._edges[edge] = (next_id, delta)
            self._cur = self._phys = next_id
            self.novel_passes += 1
        else:
            self._cur = known[0]
        self._counts[edge] += 1

    # ------------------------------------------------------------------ #
    # accounting                                                         #
    # ------------------------------------------------------------------ #

    @property
    def distinct_states(self) -> int:
        return len(self._snapshots)

    @property
    def segment_alphabet(self) -> int:
        """Distinct segments this stream simulated (library-independent)."""
        return len({seg_key for _state, seg_key in self._edges})

    def phase_counters(self, name: str) -> List[int]:
        """The 15-counter total the machine would have accumulated over
        the phase's segments, reconstructed exactly from edge counts."""
        totals = [0] * 15
        for edge, count in self._phases[name].items():
            delta = self._edges[edge][1]
            for i in range(15):
                totals[i] += count * delta[i]
        return totals

    def phase_seg_counts(self, name: str) -> Counter:
        """Fire counts per segment key (for CPU-side aggregation)."""
        out: Counter = Counter()
        for (_state, seg_key), count in self._phases[name].items():
            out[seg_key] += count
        return out

    @staticmethod
    def stall_and_instructions(counters: List[int]) -> Tuple[int, int]:
        return counters[_STALL], counters[_INSTR]
