"""The demux-cache study: scheme x arrival-mix x flow-count sweeps.

``run_traffic_point`` streams one spec through one scheme on one engine
and reports hit rates (from the real :class:`~repro.xkernel.map.Map`
instances) plus cold/steady cycle totals (from the transition-memoized
stream).  ``run_traffic_study`` sweeps the grid and carries everything a
paper-style table needs.

All numbers are integers or exact ratios of integers, so two engines —
or two runs — produce bit-identical JSON and rendered tables.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.arch.simulator import AlphaConfig
from repro.traffic.arrivals import SCAN, ArrivalSampler
from repro.traffic.flowtable import FlowTables
from repro.traffic.segments import SegmentLibrary
from repro.traffic.spec import MIXES, TrafficSpec
from repro.traffic.stream import TransitionStream, make_stream_machine
from repro.xkernel.map import SCHEME_SPECS, make_scheme

if TYPE_CHECKING:  # resilience layers on traffic, never the reverse
    from repro.resilience.faults import FaultProfile

#: placeholder outcome for a demux layer a faulted packet never reaches
_ABSENT = (False, 0, 0)


class StreamCollector:
    """Optional per-packet observations for the resilience harness.

    ``services`` is the per-packet service demand in simulated cycles
    (memory stalls + CPU work of the packet's segment); ``faults``
    counts injected fault arrivals by kind.
    """

    def __init__(self) -> None:
        # bounded: one entry per streamed packet, resilience runs only
        self.services: List[int] = []
        # bounded: one entry per fault kind
        self.faults: Counter = Counter()


@dataclass
class TrafficPoint:
    """One (spec, scheme, engine) streaming run's results."""

    spec: TrafficSpec
    scheme: str
    engine: str
    packets: int
    #: per-population, per-layer map statistics
    map_stats: Dict[str, Dict[str, dict]]
    #: whole-stream totals
    instructions: int
    stall_cycles: int
    cpu_cycles: int
    #: totals over the post-warm-up window
    steady_instructions: int
    steady_stall_cycles: int
    steady_cpu_cycles: int
    #: streaming-engine introspection
    novel_passes: int
    distinct_states: int
    segment_alphabet: int
    #: memo entries dropped to stay under the spec's caps (0 = no
    #: eviction, the memo held the whole transition graph)
    memo_evictions: int = 0
    #: True if the stream's watchdog degraded it to sequential simulation
    degraded: bool = False

    @property
    def l4_hit_rate(self) -> float:
        resolves = hits = 0
        for layers in self.map_stats.values():
            stats = layers["l4"]
            resolves += stats["resolves"]
            hits += stats["cache_hits"]
        return hits / resolves if resolves else 0.0

    @property
    def mcpi(self) -> float:
        return self.stall_cycles / self.instructions if self.instructions else 0.0

    @property
    def steady_mcpi(self) -> float:
        if not self.steady_instructions:
            return 0.0
        return self.steady_stall_cycles / self.steady_instructions

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return (self.cpu_cycles + self.stall_cycles) / self.instructions

    @property
    def steady_cpi(self) -> float:
        if not self.steady_instructions:
            return 0.0
        return (
            self.steady_cpu_cycles + self.steady_stall_cycles
        ) / self.steady_instructions

    def to_json(self) -> dict:
        return {
            "spec": self.spec.to_json(),
            "scheme": self.scheme,
            "engine": self.engine,
            "packets": self.packets,
            "map_stats": self.map_stats,
            "instructions": self.instructions,
            "stall_cycles": self.stall_cycles,
            "cpu_cycles": self.cpu_cycles,
            "steady_instructions": self.steady_instructions,
            "steady_stall_cycles": self.steady_stall_cycles,
            "steady_cpu_cycles": self.steady_cpu_cycles,
            "l4_hit_rate": self.l4_hit_rate,
            "mcpi": self.mcpi,
            "steady_mcpi": self.steady_mcpi,
            "novel_passes": self.novel_passes,
            "distinct_states": self.distinct_states,
            "segment_alphabet": self.segment_alphabet,
            "memo_evictions": self.memo_evictions,
            "degraded": self.degraded,
        }


@dataclass
class TrafficStudy:
    """A sweep's points plus the axes that produced them."""

    base_spec: TrafficSpec
    engine: str
    schemes: Tuple[str, ...]
    mixes: Tuple[str, ...]
    flow_counts: Tuple[int, ...]
    # bounded: one entry per grid point
    points: List[TrafficPoint] = field(default_factory=list)

    def point(self, scheme: str, mix: str, flows: int) -> TrafficPoint:
        for p in self.points:
            if (p.scheme, p.spec.mix, p.spec.flows) == (scheme, mix, flows):
                return p
        raise KeyError(f"no point for {(scheme, mix, flows)}")

    def to_json(self) -> dict:
        return {
            "base_spec": self.base_spec.to_json(),
            "engine": self.engine,
            "schemes": list(self.schemes),
            "mixes": list(self.mixes),
            "flow_counts": list(self.flow_counts),
            "points": [p.to_json() for p in self.points],
        }

    def render(self) -> str:
        from repro.harness.reporting import render_traffic_table

        return render_traffic_table(self)

    def check(self) -> List[str]:
        """Every grid point the axes promise must actually be present."""
        missing = []  # bounded: one entry per (scheme, mix, flows) axis cell
        for mix in self.mixes:
            for flows in self.flow_counts:
                for scheme in self.schemes:
                    try:
                        self.point(scheme, mix, flows)
                    except KeyError:
                        missing.append(
                            f"missing point {(scheme, mix, flows)!r}"
                        )
        return missing


def _normalize_engine(engine: str) -> str:
    if engine in ("fast", "guarded"):
        return "fast"
    if engine in ("gensim", "guarded-gensim"):
        return "gensim"
    return engine  # make_stream_machine raises with the full story


class _CellSetup:
    """Per-population segment libraries and image offsets for a spec."""

    def __init__(self, spec: TrafficSpec, config: AlphaConfig) -> None:
        offset = config.memory.bcache_size
        if spec.stack == "tcpip":
            populations = {"tcp": ("tcpip", 0)}
        elif spec.stack == "rpc":
            populations = {"rpc": ("rpc", 0)}
        else:  # mixed: the RPC image rides at a bcache-aligned offset
            populations = {"tcp": ("tcpip", 0), "rpc": ("rpc", offset)}
        self.libraries: Dict[str, SegmentLibrary] = {
            pop: SegmentLibrary(
                stack,
                spec.config,
                population=pop,
                capture_seed=spec.capture_seed,
                image_offset=off,
            )
            for pop, (stack, off) in populations.items()
        }

    @property
    def populations(self) -> Tuple[str, ...]:
        return tuple(self.libraries)


def run_traffic_point(
    spec: TrafficSpec,
    scheme_spec: str,
    *,
    engine: str = "fast",
    config: Optional[AlphaConfig] = None,
    setup: Optional[_CellSetup] = None,
    faults: Optional["FaultProfile"] = None,
    collect: Optional[StreamCollector] = None,
    watchdog_s: Optional[float] = None,
) -> TrafficPoint:
    """Stream one spec through one caching scheme on one engine.

    ``faults`` injects deterministic per-packet fault arrivals (see
    :class:`repro.resilience.faults.FaultProfile`); a profile whose
    rates are all zero draws nothing from any RNG, so the stream is
    bit-identical to a pristine run.  ``collect`` gathers per-packet
    service cycles and fault counts for the overload model.
    """
    spec.validate()
    config = config or AlphaConfig()
    engine = _normalize_engine(engine)
    setup = setup or _CellSetup(spec, config)
    libraries = setup.libraries
    populations = setup.populations

    rng = random.Random(spec.seed)
    sampler = ArrivalSampler(spec, rng)
    profile_draw = faults.arrivals(spec) if faults is not None else None
    in_scope = faults.scope_filter(spec) if faults is not None else None
    collect_services = collect.services if collect is not None else None
    fault_counts = collect.faults if collect is not None else None
    tables = {
        pop: FlowTables(spec, scheme_spec, population=pop) for pop in populations
    }
    schemes = {pop: tables[pop].l4.scheme for pop in populations}

    # slot -> (population, flow uid, established); churn retires a uid and
    # binds a fresh one whose first packet runs the slow (unestablished)
    # path, as a real connection's first segment would
    slot_pop: List[str] = []  # bounded: one entry per flow slot
    slot_uid: List[int] = []  # bounded: one entry per flow slot
    slot_established: List[bool] = []  # bounded: one entry per flow slot
    for slot in range(spec.flows):
        if spec.stack == "mixed":
            pop = "rpc" if rng.random() < spec.rpc_fraction else "tcp"
        else:
            pop = populations[0]
        slot_pop.append(pop)
        slot_uid.append(slot)
        slot_established.append(True)
        tables[pop].open_flow(slot)
    next_uid = spec.flows
    churn = spec.churn

    stream = TransitionStream(
        make_stream_machine(engine, config),
        state_cap=spec.memo_state_cap,
        edge_cap=spec.memo_edge_cap,
        watchdog_s=watchdog_s,
    )
    stream.start_phase("warmup")
    in_warmup = spec.warmup_packets > 0
    if not in_warmup:
        stream.start_phase("steady")

    for packet_index in range(spec.packets):
        if in_warmup and packet_index == spec.warmup_packets:
            stream.start_phase("steady")
            in_warmup = False
        if churn and rng.random() < churn:
            victim = rng.randrange(spec.flows)
            pop = slot_pop[victim]
            tables[pop].close_flow(slot_uid[victim])
            slot_uid[victim] = next_uid
            slot_established[victim] = False
            tables[pop].open_flow(next_uid)
            next_uid += 1
        slot = sampler.next()
        kind = profile_draw() if profile_draw is not None else None
        if kind is not None and in_scope is not None and not in_scope(slot):
            kind = None
        if kind == "duplicated_packet" and slot == SCAN:
            kind = None  # a duplicate needs a bound flow to duplicate
        if kind is None:
            # pristine classification — byte-for-byte the no-fault path
            if slot == SCAN:
                pop = (
                    populations[0]
                    if len(populations) == 1
                    else ("rpc" if rng.random() < spec.rpc_fraction else "tcp")
                )
                eth, ip, l4 = tables[pop].probe_packet(next_uid)
                next_uid += 1
                established = False
            else:
                pop = slot_pop[slot]
                eth, ip, l4 = tables[pop].probe_packet(slot_uid[slot])
                established = slot_established[slot]
                slot_established[slot] = True
            variant = (pop, eth, ip, l4, established)
        else:
            if slot == SCAN:
                pop = (
                    populations[0]
                    if len(populations) == 1
                    else ("rpc" if rng.random() < spec.rpc_fraction else "tcp")
                )
            else:
                pop = slot_pop[slot]
            table = tables[pop]
            if kind == "bad_demux_key":
                # a garbled key is a real unknown-key lookup: it misses
                # every cache and walks the full chain, byte-for-byte
                # the trace a scan packet already pays — no new segment
                eth, ip, l4 = table.probe_packet(next_uid)
                next_uid += 1
                variant = (pop, eth, ip, l4, False)
            elif kind == "truncated_header":
                # the runt check rejects before any demux map is touched
                ip_outcome = _ABSENT if table.ip is not None else None
                variant = (pop, _ABSENT, ip_outcome, _ABSENT, False, kind)
            elif kind == "corrupt_checksum":
                # eth (and ip) demux paid in full, l4 never consulted
                eth, ip = table.probe_pre_l4()
                variant = (pop, eth, ip, _ABSENT, False, kind)
            else:  # duplicated_packet, on a bound flow
                # re-probed like any segment, then suppressed on the
                # no-progress leg; established is forced (a duplicate is
                # of a segment the flow already processed) and the slot's
                # own establishment is untouched — suppression is not
                # progress
                eth, ip, l4 = table.probe_packet(slot_uid[slot])
                variant = (pop, eth, ip, l4, True, kind)
            if fault_counts is not None:
                fault_counts[kind] += 1
        lib = libraries[pop]
        scheme = schemes[pop]
        delta = stream.feed(variant, lambda: lib.segment(variant, scheme)[0])
        if collect_services is not None:
            stall, _instr = TransitionStream.stall_and_instructions(delta)
            collect_services.append(stall + lib.segment(variant, scheme)[1].cycles)

    warm = stream.phase_counters("warmup") if spec.warmup_packets else [0] * 15
    steady = stream.phase_counters("steady")
    total = [w + s for w, s in zip(warm, steady)]

    def cpu_cycles(phase: str) -> int:
        cycles = 0
        for variant, count in stream.phase_seg_counts(phase).items():
            pop = variant[0]
            cpu = libraries[pop].segment(variant, schemes[pop])[1]
            cycles += count * cpu.cycles
        return cycles

    steady_cpu = cpu_cycles("steady")
    total_cpu = steady_cpu + (cpu_cycles("warmup") if spec.warmup_packets else 0)

    return TrafficPoint(
        spec=spec,
        scheme=schemes[populations[0]].name,
        engine=engine,
        packets=spec.packets,
        map_stats={
            pop: {
                layer: _stats_json(stats)
                for layer, stats in tables[pop].stats().items()
            }
            for pop in populations
        },
        instructions=total[12],
        stall_cycles=total[11],
        cpu_cycles=total_cpu,
        steady_instructions=steady[12],
        steady_stall_cycles=steady[11],
        steady_cpu_cycles=steady_cpu,
        novel_passes=stream.novel_passes,
        distinct_states=stream.distinct_states,
        segment_alphabet=stream.segment_alphabet,
        memo_evictions=stream.memo_evictions,
        degraded=stream.degraded,
    )


def _stats_json(stats) -> dict:
    return {
        "scheme": stats.scheme,
        "resolves": stats.resolves,
        "cache_hits": stats.cache_hits,
        "failed_resolves": stats.failed_resolves,
        "probe_compares": stats.probe_compares,
        "installs": stats.installs,
        "evictions": stats.evictions,
        "invalidations": stats.invalidations,
        "chain_probes": stats.chain_probes,
        "binds": stats.binds,
        "unbinds": stats.unbinds,
    }


def run_traffic_study(
    base_spec: TrafficSpec,
    *,
    schemes: Sequence[str] = SCHEME_SPECS,
    mixes: Optional[Sequence[str]] = None,
    flow_counts: Optional[Sequence[int]] = None,
    engine: str = "fast",
    config: Optional[AlphaConfig] = None,
) -> TrafficStudy:
    """Sweep scheme x mix x flow-count over one cell and engine.

    The segment library is shared across points (walks are per-variant,
    not per-point); every point gets fresh maps, a fresh machine and the
    same seeds, so points are independent and the grid order is
    irrelevant to the numbers.
    """
    mixes = tuple(mixes) if mixes is not None else (base_spec.mix,)
    flow_counts = tuple(flow_counts) if flow_counts is not None else (base_spec.flows,)
    for mix in mixes:
        if mix not in MIXES:
            raise ValueError(f"mix must be one of {MIXES}, got {mix!r}")
    schemes = tuple(make_scheme(s).name for s in schemes)
    config = config or AlphaConfig()
    study = TrafficStudy(
        base_spec=base_spec,
        engine=_normalize_engine(engine),
        schemes=schemes,
        mixes=mixes,
        flow_counts=flow_counts,
    )
    setup = _CellSetup(base_spec, config)
    for flows in flow_counts:
        for mix in mixes:
            spec = base_spec.with_(mix=mix, flows=flows)
            for scheme in schemes:
                study.points.append(
                    run_traffic_point(
                        spec, scheme, engine=engine, config=config, setup=setup
                    )
                )
    return study
