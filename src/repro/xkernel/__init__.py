"""The x-kernel substrate: the protocol framework the paper builds on.

The x-kernel [HP91] structures networking code as a graph of *protocol*
objects connected at configuration time; per-connection state lives in
*session* objects; packets travel in *messages* whose headers are pushed
and popped as they cross layers; demultiplexing uses *maps* (hash tables
with a one-entry cache); timers come from the *event* manager, and
concurrency from a *process* (thread) layer that this port optimizes with
continuations and LIFO-recycled first-class stacks (Section 2.2.1).

Every runtime object that protocol code touches carries a simulated data
address from :mod:`repro.xkernel.alloc`, so the d-cache model in
:mod:`repro.arch` sees realistic access streams.
"""

from repro.xkernel.alloc import SimAllocator
from repro.xkernel.message import Message, MessagePool
from repro.xkernel.map import Map, MapStats
from repro.xkernel.event import EventManager, Event
from repro.xkernel.process import Scheduler, Thread, Semaphore, StackPool
from repro.xkernel.protocol import Protocol, Session, ProtocolStack, XkernelError

__all__ = [
    "SimAllocator",
    "Message",
    "MessagePool",
    "Map",
    "MapStats",
    "EventManager",
    "Event",
    "Scheduler",
    "Thread",
    "Semaphore",
    "StackPool",
    "Protocol",
    "Session",
    "ProtocolStack",
    "XkernelError",
]
