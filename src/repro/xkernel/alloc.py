"""Simulated kernel memory allocator.

Gives every runtime object (messages, protocol state, hash-table buckets,
stacks) a stable simulated address so the d-cache model sees the same kind
of access stream the real kernel produced.  The allocator is a size-classed
free-list bump allocator:

* allocations are rounded to 16-byte granules (malloc overhead included),
* frees push the region onto a per-class LIFO free list, so a malloc right
  after a free of the same class reuses a *cache-warm* address — the very
  effect the paper's message-refresh short-circuit and LIFO stack recycling
  exploit,
* a seeded "startup jitter" consumes a random amount of early heap, which
  is how the experiment harness reproduces the paper's run-to-run variance
  ("the memory free-list is likely to vary from test case to test case").
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

GRANULE = 16
#: chosen so heap data does not alias the text segment (0x10_0000), the
#: GOT (0x60_0000), or the stacks (0x47_0000) in a 2 MB direct-mapped
#: b-cache: 0x0108_0000 % 0x20_0000 == 0x8_0000
DEFAULT_HEAP_BASE = 0x0108_0000


class AllocationError(RuntimeError):
    pass


class SimAllocator:
    """Size-classed simulated allocator with LIFO free lists."""

    def __init__(self, base: int = DEFAULT_HEAP_BASE, *,
                 jitter_seed: Optional[int] = None) -> None:
        self.base = base
        self._brk = base
        self._free: Dict[int, List[int]] = {}
        self._live: Dict[int, int] = {}  # addr -> rounded size
        self.alloc_count = 0
        self.free_count = 0
        self.reuse_count = 0
        if jitter_seed is not None:
            self._startup_jitter(jitter_seed)

    def _startup_jitter(self, seed: int) -> None:
        """Perturb the heap like a differently-ordered boot sequence."""
        rng = random.Random(seed)
        self._brk += GRANULE * rng.randrange(0, 64)
        # leave a few odd-sized holes on the free lists
        for _ in range(rng.randrange(0, 8)):
            size = GRANULE * rng.randrange(1, 16)
            addr = self._brk
            self._brk += size
            self._free.setdefault(size, []).append(addr)

    @staticmethod
    def _round(size: int) -> int:
        if size <= 0:
            raise AllocationError(f"invalid allocation size {size}")
        return (size + GRANULE - 1) // GRANULE * GRANULE

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the simulated address."""
        rounded = self._round(size)
        self.alloc_count += 1
        free_list = self._free.get(rounded)
        if free_list:
            addr = free_list.pop()
            self.reuse_count += 1
        else:
            addr = self._brk
            self._brk += rounded
        self._live[addr] = rounded
        return addr

    def free(self, addr: int) -> None:
        """Return a region to its size class's LIFO free list."""
        try:
            rounded = self._live.pop(addr)
        except KeyError:
            raise AllocationError(f"free of unallocated address {addr:#x}") from None
        self.free_count += 1
        self._free.setdefault(rounded, []).append(addr)

    def would_reuse(self, size: int) -> bool:
        """Stat-free probe: would a malloc of this size hit a free list?

        The instruction-level models use this to pick the allocator's fast
        or slow path for the upcoming allocation.
        """
        free_list = self._free.get(self._round(size))
        return bool(free_list)

    def is_live(self, addr: int) -> bool:
        return addr in self._live

    @property
    def live_bytes(self) -> int:
        return sum(self._live.values())

    @property
    def heap_used(self) -> int:
        return self._brk - self.base
