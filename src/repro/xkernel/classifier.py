"""Packet classifier: the run-time guard path-inlining depends on.

Path-inlined code is only correct for packets that actually follow the
assumed path, so inbound packets must be classified first (Section 3.3;
the paper cites PathFinder/BPF-style classifiers [BGP+94, MJ93, EKJ95] and
measures their cost at 1-4 µs on the same hardware).  The experiments in
Section 4 deliberately exclude that cost — the isolated test network
carries only matching traffic — and so do ours; this module exists so the
cost can be measured separately, as DESIGN.md promises.

The classifier is a small decision DAG over byte-field comparisons, built
from declarative patterns:

.. code-block:: python

    clf = PacketClassifier()
    clf.add_pattern("tcp_path", [
        FieldMatch(offset=12, width=2, value=0x0800),   # EtherType: IP
        FieldMatch(offset=23, width=1, value=6),        # proto: TCP
        FieldMatch(offset=36, width=2, value=7),        # dst port: echo
    ])
    clf.classify(frame_bytes)  # -> "tcp_path" or None
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class ClassifierError(RuntimeError):
    pass


@dataclass(frozen=True)
class FieldMatch:
    """Match ``width`` big-endian bytes at ``offset`` against ``value``."""

    offset: int
    width: int
    value: int
    mask: int = -1  # -1: full-width mask

    def __post_init__(self) -> None:
        if self.width not in (1, 2, 4):
            raise ClassifierError("field width must be 1, 2 or 4 bytes")
        if self.offset < 0:
            raise ClassifierError("negative field offset")

    @property
    def effective_mask(self) -> int:
        full = (1 << (8 * self.width)) - 1
        return full if self.mask == -1 else self.mask & full

    def matches(self, packet: bytes) -> bool:
        end = self.offset + self.width
        if end > len(packet):
            return False
        value = int.from_bytes(packet[self.offset:end], "big")
        return (value & self.effective_mask) == (
            self.value & self.effective_mask
        )


class _Node:
    """One decision level: dispatch on a (offset, width, mask) field."""

    __slots__ = ("field_key", "edges", "terminal")

    def __init__(self) -> None:
        self.field_key: Optional[Tuple[int, int, int]] = None
        self.edges: Dict[int, "_Node"] = {}
        self.terminal: Optional[str] = None


class PacketClassifier:
    """A PathFinder-style hierarchical classifier.

    Patterns sharing field prefixes share decision nodes, so classifying
    costs one comparison per level rather than one scan per pattern.
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._patterns: Dict[str, List[FieldMatch]] = {}
        self.classifications = 0
        self.comparisons = 0

    def add_pattern(self, name: str, fields: Sequence[FieldMatch]) -> None:
        if name in self._patterns:
            raise ClassifierError(f"duplicate pattern {name!r}")
        if not fields:
            raise ClassifierError("empty pattern")
        self._patterns[name] = list(fields)
        node = self._root
        for field in fields:
            key = (field.offset, field.width, field.effective_mask)
            if node.field_key is None:
                node.field_key = key
            elif node.field_key != key:
                raise ClassifierError(
                    f"pattern {name!r} diverges from the decision tree at "
                    f"offset {field.offset} (PathFinder requires aligned "
                    f"cell structure)"
                )
            masked = field.value & field.effective_mask
            node = node.edges.setdefault(masked, _Node())
        if node.terminal is not None:
            raise ClassifierError(
                f"patterns {node.terminal!r} and {name!r} are identical"
            )
        node.terminal = name

    def classify(self, packet: bytes) -> Optional[str]:
        """Return the matching pattern name, or None."""
        self.classifications += 1
        node = self._root
        while node.field_key is not None:
            offset, width, mask = node.field_key
            end = offset + width
            if end > len(packet):
                return node.terminal
            self.comparisons += 1
            value = int.from_bytes(packet[offset:end], "big") & mask
            nxt = node.edges.get(value)
            if nxt is None:
                return node.terminal
            node = nxt
        return node.terminal

    @property
    def patterns(self) -> List[str]:
        return list(self._patterns)


def tcp_path_classifier(dst_port: int) -> PacketClassifier:
    """The classifier a PIN build of the TCP/IP stack would install."""
    clf = PacketClassifier()
    clf.add_pattern("tcpip_input_path", [
        FieldMatch(offset=12, width=2, value=0x0800),  # EtherType: IPv4
        FieldMatch(offset=23, width=1, value=6),       # IP proto: TCP
        FieldMatch(offset=36, width=2, value=dst_port),
    ])
    return clf


def build_classifier_model():
    """Instruction-level model of one classification (cost measured
    separately from the Section 4 experiments, as in the paper)."""
    from repro.core.ir import FunctionBuilder

    fb = FunctionBuilder("packet_classify", module="classifier", saves=4)
    fb.block("entry").mix(alu=16, loads=6, region="clf")
    fb.block("level").load("msg", 12, 2).alu(9).load("clf", 32, 2)
    fb.branch("more_levels", "level", "accept", default=False)
    fb.block("accept").mix(alu=10, loads=3, region="clf", offset=64)
    fb.branch("matched", "done", "reject", default=True)
    fb.block("reject", unlikely=True).alu(14)
    fb.jump("done")
    fb.block("done").alu(5)
    fb.ret()
    return fb.build()
