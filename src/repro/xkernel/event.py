"""The x-kernel event (timer) manager.

Protocols register timeout handlers (TCP retransmit, delayed ACK, RPC
channel timeouts); the network simulator's virtual clock drives them.
Events can be cancelled before they fire — the common case on a healthy
low-latency LAN, which is why the paper's fast paths barely touch this
module during a ping-pong test.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


class EventError(RuntimeError):
    pass


@dataclass
class Event:
    """Handle returned by :meth:`EventManager.schedule`."""

    event_id: int
    fire_at_us: float
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventManager:
    """Virtual-time timer wheel (a heap; precision beats authenticity here)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event, Callable[[], None]]] = []
        self._ids = itertools.count(1)
        self.now_us: float = 0.0
        self.fired = 0
        self.cancelled = 0
        self.scheduled = 0

    def schedule(self, delay_us: float, handler: Callable[[], None]) -> Event:
        """Run ``handler`` after ``delay_us`` of virtual time."""
        if delay_us < 0:
            raise EventError("negative delay")
        event = Event(next(self._ids), self.now_us + delay_us)
        heapq.heappush(self._heap, (event.fire_at_us, event.event_id, event, handler))
        self.scheduled += 1
        return event

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event; returns False if it already fired."""
        if event.cancelled:
            return True
        event.cancelled = True
        self.cancelled += 1
        return True

    def advance_to(self, time_us: float) -> int:
        """Advance the clock, firing due events in order; returns count."""
        if time_us < self.now_us:
            raise EventError("time cannot go backwards")
        count = 0
        while self._heap and self._heap[0][0] <= time_us:
            fire_at, _, event, handler = heapq.heappop(self._heap)
            self.now_us = fire_at
            if event.cancelled:
                continue
            event.cancelled = True  # one-shot
            self.fired += 1
            count += 1
            handler()
        self.now_us = time_us
        return count

    def advance(self, delta_us: float) -> int:
        return self.advance_to(self.now_us + delta_us)

    @property
    def pending(self) -> int:
        return sum(1 for _, _, ev, _ in self._heap if not ev.cancelled)

    def next_fire_time(self) -> Optional[float]:
        for fire_at, _, event, _ in sorted(self._heap)[:16]:
            if not event.cancelled:
                return fire_at
        live = [item for item in self._heap if not item[2].cancelled]
        return min(live)[0] if live else None
