"""The x-kernel demultiplexing map (hash table), with the paper's tweaks.

Three features from Sections 2.2.1 and 2.2.3 are reproduced faithfully:

* **one-entry cache** — network traffic is bursty per connection [Mog92],
  so the map caches the last resolved entry; a hit costs only the key
  comparison,
* **conditional inlining** — the cache probe is simple enough to inline
  when the key's size/alignment are compile-time constants; the map keeps
  hit/miss statistics so the instruction-level models can charge the
  inlined fast path or the general function accordingly,
* **lazy non-empty-bucket list** — to let TCP drop its separate
  list-of-open-connections, the map chains non-empty buckets so traversal
  visits only them.  Removing a bucket from the chain eagerly would need a
  doubly-linked list, so removal is lazy: emptied buckets stay chained
  until the next traversal unlinks them in passing (trivial, because the
  traversal tracks the previous chained bucket).

Traversal cost is therefore proportional to the number of chained buckets,
not the table size — the paper's "roughly an order of magnitude faster at
10 % occupancy" claim, which ``benchmarks/test_hashtable_traversal.py``
regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.xkernel.alloc import SimAllocator


class MapError(RuntimeError):
    pass


@dataclass
class MapStats:
    resolves: int = 0
    cache_hits: int = 0
    binds: int = 0
    unbinds: int = 0
    traversals: int = 0
    buckets_visited: int = 0
    buckets_unlinked: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.resolves if self.resolves else 0.0


class _Entry:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: bytes, value: object, next_: Optional["_Entry"]) -> None:
        self.key = key
        self.value = value
        self.next = next_


class _Bucket:
    __slots__ = ("head", "chained", "next_chained", "sim_addr")

    def __init__(self, sim_addr: int) -> None:
        self.head: Optional[_Entry] = None
        self.chained: bool = False
        self.next_chained: int = -1
        self.sim_addr = sim_addr


class Map:
    """Demux hash table with one-entry cache and lazy non-empty chaining."""

    def __init__(self, num_buckets: int = 64, *,
                 allocator: Optional[SimAllocator] = None) -> None:
        if num_buckets <= 0 or num_buckets & (num_buckets - 1):
            raise MapError("bucket count must be a positive power of two")
        self._allocator = allocator or SimAllocator()
        self.sim_addr = self._allocator.malloc(num_buckets * 16)
        self._buckets: List[_Bucket] = [
            _Bucket(self.sim_addr + 16 * i) for i in range(num_buckets)
        ]
        self._mask = num_buckets - 1
        self._chain_head: int = -1
        self._cache: Optional[Tuple[bytes, _Entry]] = None
        self._size = 0
        self.stats = MapStats()

    # ------------------------------------------------------------------ #
    # hashing                                                            #
    # ------------------------------------------------------------------ #

    def _index(self, key: bytes) -> int:
        h = 2166136261
        for b in key:
            h = ((h ^ b) * 16777619) & 0xFFFFFFFF
        return h & self._mask

    # ------------------------------------------------------------------ #
    # bind / unbind / resolve                                            #
    # ------------------------------------------------------------------ #

    def bind(self, key: bytes, value: object) -> None:
        """Install a key -> value binding (duplicate keys rejected)."""
        idx = self._index(key)
        bucket = self._buckets[idx]
        entry = bucket.head
        while entry is not None:
            if entry.key == key:
                raise MapError(f"duplicate binding for key {key!r}")
            entry = entry.next
        bucket.head = _Entry(key, value, bucket.head)
        if not bucket.chained:
            bucket.chained = True
            bucket.next_chained = self._chain_head
            self._chain_head = idx
        self._size += 1
        self.stats.binds += 1

    def unbind(self, key: bytes) -> object:
        """Remove a binding; the bucket stays chained (lazy removal)."""
        idx = self._index(key)
        bucket = self._buckets[idx]
        prev: Optional[_Entry] = None
        entry = bucket.head
        while entry is not None:
            if entry.key == key:
                if prev is None:
                    bucket.head = entry.next
                else:
                    prev.next = entry.next
                self._size -= 1
                self.stats.unbinds += 1
                if self._cache is not None and self._cache[0] == key:
                    self._cache = None
                return entry.value
            prev, entry = entry, entry.next
        raise MapError(f"unbind of unbound key {key!r}")

    def resolve(self, key: bytes) -> object:
        """Look up a key, one-entry cache first (x-kernel mapResolve)."""
        self.stats.resolves += 1
        if self._cache is not None and self._cache[0] == key:
            self.stats.cache_hits += 1
            return self._cache[1].value
        idx = self._index(key)
        entry = self._buckets[idx].head
        while entry is not None:
            if entry.key == key:
                self._cache = (key, entry)
                return entry.value
            entry = entry.next
        raise MapError(f"unresolved key {key!r}")

    def resolve_or_none(self, key: bytes) -> Optional[object]:
        try:
            return self.resolve(key)
        except MapError:
            return None

    def cache_would_hit(self, key: bytes) -> bool:
        """Stat-free probe used by the instruction-level models to decide
        whether the inlined cache test succeeds for this lookup."""
        return self._cache is not None and self._cache[0] == key

    # ------------------------------------------------------------------ #
    # traversal                                                          #
    # ------------------------------------------------------------------ #

    def traverse(self) -> Iterator[Tuple[bytes, object]]:
        """Visit every binding by walking the non-empty-bucket chain.

        Emptied buckets encountered on the way are unlinked for free: the
        walk knows its predecessor, which is exactly why lazy removal works.
        """
        self.stats.traversals += 1
        prev = -1
        idx = self._chain_head
        while idx != -1:
            bucket = self._buckets[idx]
            self.stats.buckets_visited += 1
            next_idx = bucket.next_chained
            if bucket.head is None:
                # lazily unlink the empty bucket
                if prev == -1:
                    self._chain_head = next_idx
                else:
                    self._buckets[prev].next_chained = next_idx
                bucket.chained = False
                bucket.next_chained = -1
                self.stats.buckets_unlinked += 1
            else:
                entry = bucket.head
                while entry is not None:
                    yield entry.key, entry.value
                    entry = entry.next
                prev = idx
            idx = next_idx

    def traverse_full_scan(self) -> Iterator[Tuple[bytes, object]]:
        """The naive traversal (visit every bucket) the paper replaced.

        Kept as the baseline for the traversal benchmark.
        """
        self.stats.traversals += 1
        for bucket in self._buckets:
            self.stats.buckets_visited += 1
            entry = bucket.head
            while entry is not None:
                yield entry.key, entry.value
                entry = entry.next

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.resolve_or_none(key) is not None

    @property
    def num_buckets(self) -> int:
        return self._mask + 1

    @property
    def chained_buckets(self) -> int:
        count = 0
        idx = self._chain_head
        while idx != -1:
            count += 1
            idx = self._buckets[idx].next_chained
        return count
