"""The x-kernel demultiplexing map (hash table), with the paper's tweaks.

Three features from Sections 2.2.1 and 2.2.3 are reproduced faithfully:

* **one-entry cache** — network traffic is bursty per connection [Mog92],
  so the map caches the last resolved entry; a hit costs only the key
  comparison,
* **conditional inlining** — the cache probe is simple enough to inline
  when the key's size/alignment are compile-time constants; the map keeps
  hit/miss statistics so the instruction-level models can charge the
  inlined fast path or the general function accordingly,
* **lazy non-empty-bucket list** — to let TCP drop its separate
  list-of-open-connections, the map chains non-empty buckets so traversal
  visits only them.  Removing a bucket from the chain eagerly would need a
  doubly-linked list, so removal is lazy: emptied buckets stay chained
  until the next traversal unlinks them in passing (trivial, because the
  traversal tracks the previous chained bucket).

Traversal cost is therefore proportional to the number of chained buckets,
not the table size — the paper's "roughly an order of magnitude faster at
10 % occupancy" claim, which ``benchmarks/test_hashtable_traversal.py``
regenerates.

The cache in front of the hash table is pluggable.  The paper fixes the
one-entry scheme; Jain's caching-scheme comparison (PAPERS.md) asks what a
deeper front-end buys under less friendly address streams, so the map
accepts any :class:`CacheScheme`:

========================  ==============================================
spec                      scheme
========================  ==============================================
``none``                  no front-end cache (every resolve walks the table)
``one-entry``             the paper's single-entry cache (default)
``lru:K``                 fully-associative LRU stack of K entries
``direct:N``              direct-mapped, N slots indexed by key hash
``assoc:SxW``             S sets of W ways, LRU within a set
========================  ==============================================

Schemes only change which resolves hit the front end; the backing table,
bind/unbind semantics and traversal are shared.  ``MapStats`` carries the
per-scheme accounting (probe compares, installs, evictions, invalidations,
collision-chain probes) that the traffic study turns into modeled cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.xkernel.alloc import SimAllocator


class MapError(RuntimeError):
    pass


#: compare-loop trips charged for hashing the key in schemes that index by
#: hash before probing (direct-mapped, set-associative); an FNV step over an
#: 8-byte key costs about as much as two key-word compares
HASH_PROBE_TRIPS = 2


def fnv32(key: bytes) -> int:
    h = 2166136261
    for b in key:
        h = ((h ^ b) * 16777619) & 0xFFFFFFFF
    return h


@dataclass
class MapStats:
    resolves: int = 0
    cache_hits: int = 0
    #: resolves that found no binding at all (scan packets, garbled
    #: demux keys): the full not-found cost, every cache missed
    failed_resolves: int = 0
    binds: int = 0
    unbinds: int = 0
    traversals: int = 0
    buckets_visited: int = 0
    buckets_unlinked: int = 0
    #: front-end cache slots compared across all resolves
    probe_compares: int = 0
    #: front-end fills after a resolve missed the cache but found the key
    installs: int = 0
    #: front-end entries displaced by an install
    evictions: int = 0
    #: front-end entries dropped because their binding was unbound
    invalidations: int = 0
    #: collision-chain links walked in the backing table (position of the
    #: entry in its bucket; the full bucket length on a failed resolve)
    chain_probes: int = 0
    scheme: str = "one-entry"

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.resolves if self.resolves else 0.0

    @property
    def cache_misses(self) -> int:
        return self.resolves - self.cache_hits


class ResolveProbe:
    """Telemetry for the most recent ``resolve`` call on a map."""

    __slots__ = ("hit", "probes", "chain", "found")

    def __init__(self, hit: bool, probes: int, chain: int, found: bool) -> None:
        self.hit = hit  # front-end cache hit
        self.probes = probes  # cache slots compared
        self.chain = chain  # collision-chain links walked
        self.found = found  # binding existed


class _Entry:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: bytes, value: object, next_: Optional["_Entry"]) -> None:
        self.key = key
        self.value = value
        self.next = next_


class _Bucket:
    __slots__ = ("head", "chained", "next_chained", "sim_addr")

    def __init__(self, sim_addr: int) -> None:
        self.head: Optional[_Entry] = None
        self.chained: bool = False
        self.next_chained: int = -1
        self.sim_addr = sim_addr


# ---------------------------------------------------------------------- #
# front-end cache schemes                                                #
# ---------------------------------------------------------------------- #


class CacheScheme:
    """A cache in front of the backing hash table.

    ``lookup`` may update recency state and must record in ``last_probes``
    how many cached entries were compared against the key; ``would_hit`` is
    the stat-free, state-free probe the instruction-level models use for the
    conditional-inlining decision.  ``hashed`` marks schemes that index by
    key hash before comparing, which the cost model charges extra trips.
    """

    name: str = "abstract"
    hashed: bool = False

    def __init__(self) -> None:
        self.last_probes = 0

    def lookup(self, key: bytes) -> Optional[_Entry]:
        raise NotImplementedError

    def would_hit(self, key: bytes) -> bool:
        raise NotImplementedError

    def install(self, key: bytes, entry: _Entry) -> int:
        """Cache a resolved entry; returns the number of evicted entries."""
        raise NotImplementedError

    def invalidate(self, key: bytes) -> bool:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def probe_trips(self, probes: int, key_words: int) -> int:
        """Modeled compare-loop trips for a probe of ``probes`` slots."""
        trips = probes * key_words
        if self.hashed:
            trips += HASH_PROBE_TRIPS
        return trips


class NoCache(CacheScheme):
    """Baseline: every resolve walks the backing table."""

    name = "none"

    def lookup(self, key: bytes) -> Optional[_Entry]:
        self.last_probes = 0
        return None

    def would_hit(self, key: bytes) -> bool:
        return False

    def install(self, key: bytes, entry: _Entry) -> int:
        return 0

    def invalidate(self, key: bytes) -> bool:
        return False

    def clear(self) -> None:
        pass


class OneEntryCache(CacheScheme):
    """The paper's scheme: remember the last resolved entry."""

    name = "one-entry"

    def __init__(self) -> None:
        super().__init__()
        self._slot: Optional[Tuple[bytes, _Entry]] = None

    def lookup(self, key: bytes) -> Optional[_Entry]:
        if self._slot is None:
            self.last_probes = 0
            return None
        self.last_probes = 1
        if self._slot[0] == key:
            return self._slot[1]
        return None

    def would_hit(self, key: bytes) -> bool:
        return self._slot is not None and self._slot[0] == key

    def install(self, key: bytes, entry: _Entry) -> int:
        evicted = 1 if self._slot is not None and self._slot[0] != key else 0
        self._slot = (key, entry)
        return evicted

    def invalidate(self, key: bytes) -> bool:
        if self._slot is not None and self._slot[0] == key:
            self._slot = None
            return True
        return False

    def clear(self) -> None:
        self._slot = None


class LRUCache(CacheScheme):
    """Fully-associative LRU stack of ``ways`` entries (Jain's LRU-k).

    Probing is modeled MRU-first, as a linked-stack implementation would
    search it, so a hit near the top is cheaper than one near the bottom.
    """

    def __init__(self, ways: int) -> None:
        super().__init__()
        if ways <= 0:
            raise MapError("lru cache needs at least one way")
        self.ways = ways
        self.name = f"lru:{ways}"
        self._entries: "OrderedDict[bytes, _Entry]" = OrderedDict()

    def _probe_position(self, key: bytes) -> int:
        for pos, cached in enumerate(reversed(self._entries), start=1):
            if cached == key:
                return pos
        return len(self._entries)

    def lookup(self, key: bytes) -> Optional[_Entry]:
        self.last_probes = self._probe_position(key)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def would_hit(self, key: bytes) -> bool:
        return key in self._entries

    def install(self, key: bytes, entry: _Entry) -> int:
        evicted = 0
        if key not in self._entries and len(self._entries) >= self.ways:
            self._entries.popitem(last=False)
            evicted = 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        return evicted

    def invalidate(self, key: bytes) -> bool:
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()


class DirectMappedCache(CacheScheme):
    """Hash the key to one of ``slots`` slots; compare that slot only."""

    hashed = True

    def __init__(self, slots: int) -> None:
        super().__init__()
        if slots <= 0:
            raise MapError("direct-mapped cache needs at least one slot")
        self.slots = slots
        self.name = f"direct:{slots}"
        self._table: List[Optional[Tuple[bytes, _Entry]]] = [None] * slots

    def _slot(self, key: bytes) -> int:
        return fnv32(key) % self.slots

    def lookup(self, key: bytes) -> Optional[_Entry]:
        cached = self._table[self._slot(key)]
        if cached is None:
            self.last_probes = 0
            return None
        self.last_probes = 1
        if cached[0] == key:
            return cached[1]
        return None

    def would_hit(self, key: bytes) -> bool:
        cached = self._table[self._slot(key)]
        return cached is not None and cached[0] == key

    def install(self, key: bytes, entry: _Entry) -> int:
        slot = self._slot(key)
        cached = self._table[slot]
        evicted = 1 if cached is not None and cached[0] != key else 0
        self._table[slot] = (key, entry)
        return evicted

    def invalidate(self, key: bytes) -> bool:
        slot = self._slot(key)
        cached = self._table[slot]
        if cached is not None and cached[0] == key:
            self._table[slot] = None
            return True
        return False

    def clear(self) -> None:
        self._table = [None] * self.slots


class SetAssociativeCache(CacheScheme):
    """``sets`` hash-indexed sets of ``ways`` entries, LRU within a set."""

    hashed = True

    def __init__(self, sets: int, ways: int) -> None:
        super().__init__()
        if sets <= 0 or ways <= 0:
            raise MapError("set-associative cache needs positive sets and ways")
        self.sets = sets
        self.ways = ways
        self.name = f"assoc:{sets}x{ways}"
        self._sets: List["OrderedDict[bytes, _Entry]"] = [
            OrderedDict() for _ in range(sets)
        ]

    def _set(self, key: bytes) -> "OrderedDict[bytes, _Entry]":
        return self._sets[fnv32(key) % self.sets]

    def lookup(self, key: bytes) -> Optional[_Entry]:
        ways = self._set(key)
        for pos, cached in enumerate(reversed(ways), start=1):
            if cached == key:
                self.last_probes = pos
                ways.move_to_end(key)
                return ways[key]
        self.last_probes = len(ways)
        return None

    def would_hit(self, key: bytes) -> bool:
        return key in self._set(key)

    def install(self, key: bytes, entry: _Entry) -> int:
        ways = self._set(key)
        evicted = 0
        if key not in ways and len(ways) >= self.ways:
            ways.popitem(last=False)
            evicted = 1
        ways[key] = entry
        ways.move_to_end(key)
        return evicted

    def invalidate(self, key: bytes) -> bool:
        return self._set(key).pop(key, None) is not None

    def clear(self) -> None:
        for ways in self._sets:
            ways.clear()


#: the scheme sweep the demux-cache study runs by default
SCHEME_SPECS: Tuple[str, ...] = (
    "none",
    "one-entry",
    "lru:4",
    "direct:16",
    "assoc:4x2",
)


def make_scheme(spec: "str | CacheScheme | None") -> CacheScheme:
    """Build a front-end cache from a spec string (see module docstring)."""
    if spec is None:
        return OneEntryCache()
    if isinstance(spec, CacheScheme):
        return spec
    if spec == "none":
        return NoCache()
    if spec == "one-entry":
        return OneEntryCache()
    try:
        if spec.startswith("lru:"):
            return LRUCache(int(spec[4:]))
        if spec.startswith("direct:"):
            return DirectMappedCache(int(spec[7:]))
        if spec.startswith("assoc:"):
            sets, _, ways = spec[6:].partition("x")
            return SetAssociativeCache(int(sets), int(ways))
    except ValueError:
        pass
    raise MapError(
        f"unknown cache scheme {spec!r}; expected one of none, one-entry, "
        "lru:K, direct:N, assoc:SxW"
    )


class Map:
    """Demux hash table with a pluggable front-end cache and lazy chaining."""

    def __init__(self, num_buckets: int = 64, *,
                 allocator: Optional[SimAllocator] = None,
                 scheme: "str | CacheScheme | None" = None) -> None:
        if num_buckets <= 0 or num_buckets & (num_buckets - 1):
            raise MapError("bucket count must be a positive power of two")
        self._allocator = allocator or SimAllocator()
        self.sim_addr = self._allocator.malloc(num_buckets * 16)
        self._buckets: List[_Bucket] = [
            _Bucket(self.sim_addr + 16 * i) for i in range(num_buckets)
        ]
        self._mask = num_buckets - 1
        self._chain_head: int = -1
        self.scheme = make_scheme(scheme)
        self._size = 0
        self.stats = MapStats(scheme=self.scheme.name)
        self.last = ResolveProbe(False, 0, 0, False)

    # ------------------------------------------------------------------ #
    # hashing                                                            #
    # ------------------------------------------------------------------ #

    def _index(self, key: bytes) -> int:
        return fnv32(key) & self._mask

    # ------------------------------------------------------------------ #
    # bind / unbind / resolve                                            #
    # ------------------------------------------------------------------ #

    def bind(self, key: bytes, value: object) -> None:
        """Install a key -> value binding (duplicate keys rejected)."""
        idx = self._index(key)
        bucket = self._buckets[idx]
        entry = bucket.head
        while entry is not None:
            if entry.key == key:
                raise MapError(f"duplicate binding for key {key!r}")
            entry = entry.next
        bucket.head = _Entry(key, value, bucket.head)
        if not bucket.chained:
            bucket.chained = True
            bucket.next_chained = self._chain_head
            self._chain_head = idx
        self._size += 1
        self.stats.binds += 1

    def unbind(self, key: bytes) -> object:
        """Remove a binding; the bucket stays chained (lazy removal)."""
        idx = self._index(key)
        bucket = self._buckets[idx]
        prev: Optional[_Entry] = None
        entry = bucket.head
        while entry is not None:
            if entry.key == key:
                if prev is None:
                    bucket.head = entry.next
                else:
                    prev.next = entry.next
                self._size -= 1
                self.stats.unbinds += 1
                if self.scheme.invalidate(key):
                    self.stats.invalidations += 1
                return entry.value
            prev, entry = entry, entry.next
        raise MapError(f"unbind of unbound key {key!r}")

    def resolve(self, key: bytes) -> object:
        """Look up a key, front-end cache first (x-kernel mapResolve)."""
        self.stats.resolves += 1
        cached = self.scheme.lookup(key)
        probes = self.scheme.last_probes
        self.stats.probe_compares += probes
        if cached is not None:
            self.stats.cache_hits += 1
            self.last = ResolveProbe(True, probes, 0, True)
            return cached.value
        idx = self._index(key)
        entry = self._buckets[idx].head
        chain = 0
        while entry is not None:
            if entry.key == key:
                self.stats.chain_probes += chain
                self.stats.installs += 1
                self.stats.evictions += self.scheme.install(key, entry)
                self.last = ResolveProbe(False, probes, chain, True)
                return entry.value
            chain += 1
            entry = entry.next
        self.stats.chain_probes += chain
        self.stats.failed_resolves += 1
        self.last = ResolveProbe(False, probes, chain, False)
        raise MapError(f"unresolved key {key!r}")

    def resolve_or_none(self, key: bytes) -> Optional[object]:
        try:
            return self.resolve(key)
        except MapError:
            return None

    def cache_would_hit(self, key: bytes) -> bool:
        """Stat-free probe used by the instruction-level models to decide
        whether the inlined cache test succeeds for this lookup."""
        return self.scheme.would_hit(key)

    # ------------------------------------------------------------------ #
    # traversal                                                          #
    # ------------------------------------------------------------------ #

    def traverse(self) -> Iterator[Tuple[bytes, object]]:
        """Visit every binding by walking the non-empty-bucket chain.

        Emptied buckets encountered on the way are unlinked for free: the
        walk knows its predecessor, which is exactly why lazy removal works.
        """
        self.stats.traversals += 1
        prev = -1
        idx = self._chain_head
        while idx != -1:
            bucket = self._buckets[idx]
            self.stats.buckets_visited += 1
            next_idx = bucket.next_chained
            if bucket.head is None:
                # lazily unlink the empty bucket
                if prev == -1:
                    self._chain_head = next_idx
                else:
                    self._buckets[prev].next_chained = next_idx
                bucket.chained = False
                bucket.next_chained = -1
                self.stats.buckets_unlinked += 1
            else:
                entry = bucket.head
                while entry is not None:
                    yield entry.key, entry.value
                    entry = entry.next
                prev = idx
            idx = next_idx

    def traverse_full_scan(self) -> Iterator[Tuple[bytes, object]]:
        """The naive traversal (visit every bucket) the paper replaced.

        Kept as the baseline for the traversal benchmark.
        """
        self.stats.traversals += 1
        for bucket in self._buckets:
            self.stats.buckets_visited += 1
            entry = bucket.head
            while entry is not None:
                yield entry.key, entry.value
                entry = entry.next

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.resolve_or_none(key) is not None

    @property
    def num_buckets(self) -> int:
        return self._mask + 1

    @property
    def chained_buckets(self) -> int:
        count = 0
        idx = self._chain_head
        while idx != -1:
            count += 1
            idx = self._buckets[idx].next_chained
        return count

    def bucket_depth(self, key: bytes) -> int:
        """Number of collision-chain links before ``key``'s entry (the
        full bucket length for an unbound key) — stat-free."""
        entry = self._buckets[self._index(key)].head
        depth = 0
        while entry is not None and entry.key != key:
            depth += 1
            entry = entry.next
        return depth
