"""x-kernel messages: byte buffers with cheap header push/pop.

A message owns a fixed-size backing buffer with headroom, so pushing a
header is a pointer decrement — the x-kernel's central abstraction for
layered protocol processing.  Messages are reference counted; the
interrupt-side :class:`MessagePool` pre-allocates them and *refreshes* them
after protocol processing.

Section 2.2.2's optimization is implemented here: originally a refresh
destroyed the message (maybe freeing memory, depending on other
references) and allocated a new one.  In the common case the incoming
message was consumed immediately and the refcount is 1, so the free/malloc
pair can be short-circuited and the buffer reused in place — which also
keeps the buffer's address d-cache-warm.
"""

from __future__ import annotations

from typing import List

from repro.xkernel.alloc import SimAllocator

DEFAULT_BUFFER_SIZE = 2048
DEFAULT_HEADROOM = 128


class MessageError(RuntimeError):
    pass


class Message:
    """A reference-counted packet buffer with header headroom."""

    def __init__(self, allocator: SimAllocator, payload: bytes = b"", *,
                 buffer_size: int = DEFAULT_BUFFER_SIZE,
                 headroom: int = DEFAULT_HEADROOM) -> None:
        if headroom + len(payload) > buffer_size:
            raise MessageError("payload does not fit in the buffer")
        self._allocator = allocator
        self._size = buffer_size
        self.sim_addr = allocator.malloc(buffer_size)
        self._buf = bytearray(buffer_size)
        self._head = headroom
        self._tail = headroom + len(payload)
        self._buf[self._head:self._tail] = payload
        self.refcount = 1
        self.attrs: dict = {}

    # ------------------------------------------------------------------ #
    # content                                                            #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._tail - self._head

    def bytes(self) -> bytes:
        return bytes(self._buf[self._head:self._tail])

    @property
    def data_addr(self) -> int:
        """Simulated address of the first live byte."""
        return self.sim_addr + self._head

    def push(self, header: bytes) -> None:
        """Prepend a header (x-kernel msgPush)."""
        if len(header) > self._head:
            raise MessageError("no headroom left for header push")
        self._head -= len(header)
        self._buf[self._head:self._head + len(header)] = header

    def pop(self, count: int) -> bytes:
        """Strip and return the first ``count`` bytes (x-kernel msgPop)."""
        if count > len(self):
            raise MessageError(f"pop of {count} bytes from {len(self)}-byte message")
        out = bytes(self._buf[self._head:self._head + count])
        self._head += count
        return out

    def peek(self, count: int) -> bytes:
        """Read the first ``count`` bytes without stripping them."""
        if count > len(self):
            raise MessageError(f"peek of {count} bytes from {len(self)}-byte message")
        return bytes(self._buf[self._head:self._head + count])

    def truncate(self, length: int) -> None:
        """Keep only the first ``length`` bytes (x-kernel msgTruncate)."""
        if length > len(self):
            raise MessageError("cannot truncate to a longer length")
        self._tail = self._head + length

    def append(self, data: bytes) -> None:
        """Extend the payload (used by reassembly)."""
        if self._tail + len(data) > self._size:
            raise MessageError("no tailroom left")
        self._buf[self._tail:self._tail + len(data)] = data
        self._tail += len(data)

    def set_payload(self, payload: bytes, *, headroom: int = DEFAULT_HEADROOM) -> None:
        if headroom + len(payload) > self._size:
            raise MessageError("payload does not fit")
        self._head = headroom
        self._tail = headroom + len(payload)
        self._buf[self._head:self._tail] = payload

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def add_ref(self) -> "Message":
        self.refcount += 1
        return self

    def destroy(self) -> bool:
        """Drop a reference; frees the buffer when it was the last one.

        Returns True when memory was actually released.
        """
        if self.refcount <= 0:
            raise MessageError("destroy of dead message")
        self.refcount -= 1
        if self.refcount == 0:
            self._allocator.free(self.sim_addr)
            return True
        return False

    @property
    def alive(self) -> bool:
        return self.refcount > 0


class MessagePool:
    """Pre-allocated message buffers for interrupt handlers.

    ``get`` hands out a ready buffer; ``refresh`` re-stocks the pool after
    protocol processing.  With ``short_circuit`` (the Section 2.2.2
    optimization) a message whose refcount dropped back to 1 is reset in
    place, avoiding the free()/malloc() pair entirely.
    """

    def __init__(self, allocator: SimAllocator, *, size: int = 8,
                 short_circuit: bool = True,
                 buffer_size: int = DEFAULT_BUFFER_SIZE) -> None:
        self._allocator = allocator
        self._buffer_size = buffer_size
        self.short_circuit = short_circuit
        self._pool: List[Message] = [
            Message(allocator, buffer_size=buffer_size) for _ in range(size)
        ]
        self.refreshes = 0
        self.short_circuited = 0

    def get(self) -> Message:
        """Take a pre-allocated message out of the pool (FIFO rotation:
        interrupt buffers cycle, so each packet lands in a different —
        d-cache-cold — buffer)."""
        if not self._pool:
            # pool exhausted: allocate on demand (slow path)
            return Message(self._allocator, buffer_size=self._buffer_size)
        return self._pool.pop(0)

    def refresh(self, msg: Message) -> Message:
        """Re-stock the pool with a fresh buffer derived from ``msg``.

        Returns the message that went back into the pool (either ``msg``
        itself, recycled, or a newly allocated replacement).
        """
        self.refreshes += 1
        if self.short_circuit and msg.refcount == 1:
            # Common case: nobody else holds a reference, so destroying
            # would free exactly the memory we are about to allocate.
            msg.set_payload(b"")
            self.short_circuited += 1
            self._pool.append(msg)
            return msg
        msg.destroy()
        fresh = Message(self._allocator, buffer_size=self._buffer_size)
        self._pool.append(fresh)
        return fresh

    @property
    def available(self) -> int:
        return len(self._pool)
