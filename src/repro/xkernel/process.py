"""Threads, continuations and first-class stacks (Section 2.2.1).

The original x-kernel statically attached a stack to each thread.  This
port makes stacks first-class objects managed by a LIFO pool and attached
to threads on demand, and uses continuations when a thread blocks without
useful stack state.  The effect the paper measures: latency-sensitive path
invocations normally execute on the *same* (d-cache-warm) stack.

The concurrency model is cooperative and event-driven (the network
simulator is the only scheduler tick source), which is all a ping-pong
latency test exercises: the client thread blocks on a semaphore in CHAN or
in the TCP test program; the receive interrupt signals it; the scheduler
resumes it on a recycled stack or via its continuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, List, Optional
import collections

from repro.xkernel.alloc import SimAllocator

STACK_SIZE = 8 * 1024


class ProcessError(RuntimeError):
    pass


class Stack:
    """A first-class stack object with a simulated address."""

    __slots__ = ("sim_addr", "size", "in_use")

    def __init__(self, allocator: SimAllocator, size: int = STACK_SIZE) -> None:
        self.sim_addr = allocator.malloc(size)
        self.size = size
        self.in_use = False

    @property
    def top(self) -> int:
        """Stacks grow down: the initial SP is the high end."""
        return self.sim_addr + self.size


class StackPool:
    """LIFO pool of stacks: the most recently released (cache-warm) stack
    is handed out first."""

    def __init__(self, allocator: SimAllocator, *, prealloc: int = 2) -> None:
        self._allocator = allocator
        self._free: List[Stack] = [Stack(allocator) for _ in range(prealloc)]
        self.attaches = 0
        self.warm_attaches = 0
        self._last_released: Optional[Stack] = None

    def attach(self) -> Stack:
        self.attaches += 1
        if self._free:
            stack = self._free.pop()
            if stack is self._last_released:
                self.warm_attaches += 1
        else:
            stack = Stack(self._allocator)
        stack.in_use = True
        return stack

    def release(self, stack: Stack) -> None:
        if not stack.in_use:
            raise ProcessError("release of an idle stack")
        stack.in_use = False
        self._free.append(stack)
        self._last_released = stack

    @property
    def available(self) -> int:
        return len(self._free)


@dataclass
class Continuation:
    """A small closure standing in for saved stack state [DBRD91]."""

    resume: Callable[[], None]
    label: str = ""


class Thread:
    """A cooperative thread; runs to completion or blocks on a semaphore."""

    _ids = iter(range(1, 1 << 30))

    def __init__(self, scheduler: "Scheduler", body: Callable[["Thread"], None],
                 *, name: str = "") -> None:
        self.thread_id = next(self._ids)
        self.name = name or f"thread{self.thread_id}"
        self.scheduler = scheduler
        self._body = body
        self.stack: Optional[Stack] = None
        self.continuation: Optional[Continuation] = None
        self.state = "ready"  # ready | running | blocked | done

    def __repr__(self) -> str:
        return f"<Thread {self.name} {self.state}>"


class Semaphore:
    """Counting semaphore with continuation-based blocking.

    ``wait_or_block(cont)`` either consumes a count immediately (fast path:
    the reply already arrived) or records a continuation that ``signal``
    schedules; this mirrors how CHAN blocks the calling RPC thread.
    """

    def __init__(self, scheduler: "Scheduler", count: int = 0, *, name: str = "") -> None:
        self.scheduler = scheduler
        self.count = count
        self.name = name
        self._waiters: Deque[Continuation] = collections.deque()
        self.blocks = 0
        self.signals = 0

    def wait_or_block(self, cont: Continuation) -> bool:
        """Returns True if the wait was satisfied without blocking."""
        if self.count > 0:
            self.count -= 1
            return True
        self.blocks += 1
        self._waiters.append(cont)
        return False

    def signal(self) -> None:
        self.signals += 1
        if self._waiters:
            cont = self._waiters.popleft()
            self.scheduler.schedule_continuation(cont)
        else:
            self.count += 1

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Scheduler:
    """Cooperative scheduler: run-to-completion work items.

    The paper's optimization shows up in :meth:`run_pending`: each work
    item (a thread body or a resumed continuation) attaches a stack from
    the LIFO pool for the duration of its run, so consecutive path
    invocations reuse the same cache-warm stack.
    """

    def __init__(self, allocator: SimAllocator) -> None:
        self.stack_pool = StackPool(allocator)
        self._ready: Deque[Callable[[], None]] = collections.deque()
        self.dispatches = 0
        self.context_switches = 0
        #: simulated SP the protocol models use for the current work item
        self.current_stack: Optional[Stack] = None

    def spawn(self, body: Callable[[Thread], None], *, name: str = "") -> Thread:
        thread = Thread(self, body, name=name)
        self._ready.append(lambda: self._run_thread(thread))
        return thread

    def schedule_continuation(self, cont: Continuation) -> None:
        self._ready.append(cont.resume)
        self.context_switches += 1

    def call_soon(self, fn: Callable[[], None]) -> None:
        self._ready.append(fn)

    def _run_thread(self, thread: Thread) -> None:
        thread.state = "running"
        thread._body(thread)
        if thread.state == "running":
            thread.state = "done"

    def run_pending(self) -> int:
        """Drain the ready queue; returns the number of items dispatched."""
        count = 0
        while self._ready:
            item = self._ready.popleft()
            stack = self.stack_pool.attach()
            self.current_stack = stack
            try:
                item()
            finally:
                self.stack_pool.release(stack)
                self.current_stack = None
            self.dispatches += 1
            count += 1
        return count

    @property
    def idle(self) -> bool:
        return not self._ready
