"""Protocol / session framework (the x-kernel object model).

A :class:`ProtocolStack` is one host's configured protocol graph plus the
shared kernel services every protocol uses: the simulated allocator, the
message pool, the event manager, the scheduler and the tracer.  Protocols
are registered bottom-up and wired explicitly, mirroring the x-kernel's
graph built at configuration time (Figure 1 of the paper).

The uniform operations are the x-kernel's:

* ``open(upper, participants)`` — create a session for an active open,
* ``open_enable(upper, pattern)`` — register for passive demultiplexing,
* ``push(session, message)`` — outbound processing,
* ``demux(message, ...)`` — inbound processing and dispatch upward.

Concrete protocols implement the subset they need; the framework provides
registration, session bookkeeping, and access to kernel services.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.trace.tracer import NullTracer, Tracer
from repro.xkernel.alloc import SimAllocator
from repro.xkernel.event import EventManager
from repro.xkernel.map import Map
from repro.xkernel.message import Message, MessagePool
from repro.xkernel.process import Scheduler


class XkernelError(RuntimeError):
    pass


class ProtocolStack:
    """One host's protocol graph plus shared kernel services."""

    def __init__(self, hostname: str, *, tracer: Optional[Tracer] = None,
                 jitter_seed: Optional[int] = None,
                 msg_refresh_short_circuit: bool = True,
                 events: Optional[EventManager] = None) -> None:
        self.hostname = hostname
        self.allocator = SimAllocator(jitter_seed=jitter_seed)
        self.tracer: Tracer = tracer or NullTracer()
        # Hosts on the same simulated network share one world clock.
        self.events = events or EventManager()
        self.scheduler = Scheduler(self.allocator)
        self.msg_pool = MessagePool(
            self.allocator, short_circuit=msg_refresh_short_circuit
        )
        self._protocols: Dict[str, "Protocol"] = {}

    def register(self, protocol: "Protocol") -> "Protocol":
        if protocol.name in self._protocols:
            raise XkernelError(f"duplicate protocol {protocol.name!r}")
        self._protocols[protocol.name] = protocol
        return protocol

    def protocol(self, name: str) -> "Protocol":
        try:
            return self._protocols[name]
        except KeyError:
            raise XkernelError(f"no protocol {name!r} configured") from None

    def protocols(self) -> List["Protocol"]:
        return list(self._protocols.values())

    def new_message(self, payload: bytes = b"") -> Message:
        return Message(self.allocator, payload)

    @property
    def now_us(self) -> float:
        return self.events.now_us


class Session:
    """Per-connection state created by a protocol's open()."""

    _ids = iter(range(1, 1 << 30))

    def __init__(self, protocol: "Protocol", *, state_size: int = 128,
                 upper: Optional["Protocol"] = None) -> None:
        self.session_id = next(Session._ids)
        self.protocol = protocol
        self.upper = upper
        self.sim_addr = protocol.stack.allocator.malloc(state_size)
        self.closed = False

    def push(self, msg: Message) -> None:
        """Outbound: hand the message to the owning protocol."""
        if self.closed:
            raise XkernelError("push on closed session")
        self.protocol.push(self, msg)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.protocol.stack.allocator.free(self.sim_addr)

    def __repr__(self) -> str:
        return f"<Session {self.protocol.name}#{self.session_id}>"


class Protocol:
    """Base class for x-kernel protocols.

    Subclasses override the operations they participate in.  ``state_size``
    reserves simulated memory for the protocol's global state (demux maps
    are allocated separately by the subclasses that need them).
    """

    def __init__(self, stack: ProtocolStack, name: str, *,
                 state_size: int = 256) -> None:
        self.stack = stack
        self.name = name
        self.sim_addr = stack.allocator.malloc(state_size)
        self.down: List["Protocol"] = []
        stack.register(self)

    # ---- wiring ---- #

    def connect_below(self, *lower: "Protocol") -> None:
        self.down.extend(lower)

    @property
    def lower(self) -> "Protocol":
        if not self.down:
            raise XkernelError(f"{self.name} has no lower protocol")
        return self.down[0]

    # ---- uniform operations (overridable) ---- #

    def open(self, upper: "Protocol", participants: object) -> Session:
        raise XkernelError(f"{self.name} does not support open()")

    def open_enable(self, upper: "Protocol", pattern: object) -> None:
        raise XkernelError(f"{self.name} does not support open_enable()")

    def push(self, session: Session, msg: Message) -> None:
        raise XkernelError(f"{self.name} does not support push()")

    def demux(self, msg: Message, **kwargs: object) -> None:
        raise XkernelError(f"{self.name} does not support demux()")

    # ---- conveniences for subclasses ---- #

    @property
    def tracer(self) -> Tracer:
        return self.stack.tracer

    @property
    def allocator(self) -> SimAllocator:
        return self.stack.allocator

    def new_map(self, buckets: int = 64) -> Map:
        return Map(buckets, allocator=self.stack.allocator)

    def __repr__(self) -> str:
        return f"<Protocol {self.name} on {self.stack.hostname}>"
