"""Static latency bounds: domain laws, differential soundness, cells, CLI.

Four layers of evidence, cheapest first:

* the must/may domain operations obey their lattice laws on hand-built
  values (joins, residency queries, widening caps);
* the abstract transfer is *differentially* validated against the
  concrete :class:`~repro.arch.memory.MemoryHierarchy` on seeded random
  access streams over a miniature geometry — cold passes must agree
  bit for bit, steady passes must stay inside the bounds, and a pass
  from a joined state must cover both joined branches;
* hand-built mini-IR programs pin down the digest shape, the layout
  re-binding, and the conflict/persistence behaviour end to end;
* real cells (the full grid lives in ``benchmarks/check_bounds.py``)
  plus the mutation property, the ``api.analyze`` facade and the CLI
  exit-code contract.
"""

import json
import random

import pytest

from repro.analysis.bounds import (
    EMPTY,
    TOP,
    BoundsAnalyzer,
    MemState,
    bind_digest,
    bounds_from_digest,
    check_cell_bounds,
    digest_trace,
    join_tags,
    may_resident,
    must_resident,
)
from repro.arch.isa import Op, TraceEntry
from repro.arch.memory import MemoryConfig, MemoryHierarchy
from repro.core.ir import FunctionBuilder
from repro.core.program import Program
from repro.core.walker import EnterEvent, ExitEvent, Walker

#: miniature geometry: 8-block i/d-caches, 64-block b-cache, so seeded
#: random streams over a few dozen blocks actually conflict everywhere
MINI = MemoryConfig(icache_size=256, dcache_size=256, bcache_size=2048)


# --------------------------------------------------------------------------- #
# domain laws                                                                 #
# --------------------------------------------------------------------------- #


class TestDomain:
    def test_join_equal_singletons_stays_must(self):
        assert join_tags(7, 7) == 7

    def test_join_distinct_singletons_becomes_may(self):
        assert join_tags(3, 9) == frozenset((3, 9))

    def test_join_with_empty_keeps_both_possibilities(self):
        joined = join_tags(EMPTY, 5)
        assert joined == frozenset((EMPTY, 5))
        assert may_resident(joined, 5)
        assert not must_resident(joined, 5)

    def test_join_set_with_singleton_unions(self):
        assert join_tags(frozenset((1, 2)), 3) == frozenset((1, 2, 3))

    def test_join_is_commutative_and_idempotent(self):
        a, b = frozenset((1, 2)), frozenset((2, 4))
        assert join_tags(a, b) == join_tags(b, a)
        assert join_tags(a, a) == a

    def test_residency_queries(self):
        assert must_resident(4, 4)
        assert not must_resident(frozenset((4, 5)), 4)
        assert may_resident(frozenset((4, 5)), 4)
        assert not may_resident(EMPTY, 4)

    def test_memstate_join_is_pointwise_with_empty_default(self):
        a, b = MemState(), MemState()
        a.icache[0] = 1
        b.icache[0] = 2
        b.dcache[3] = 7
        joined = a.join(b)
        assert joined.icache[0] == frozenset((1, 2))
        # a set only one side touched joins against "definitely empty"
        assert joined.dcache[3] == frozenset((EMPTY, 7))

    def test_memstate_join_widens_stream_past_cap(self):
        states = [MemState() for _ in range(10)]
        for i, st in enumerate(states):
            st.stream = frozenset(((i, False),))
        joined = states[0]
        for st in states[1:]:
            joined = joined.join(st)
        assert joined.stream is TOP
        # TOP is absorbing under further joins
        assert joined.join(MemState()).stream is TOP

    def test_memstate_join_identity(self):
        st = MemState()
        st.icache[2] = 9
        st.wb = frozenset(((4, 5),))
        assert st.join(st.copy()) == st


# --------------------------------------------------------------------------- #
# differential validation against the concrete hierarchy                      #
# --------------------------------------------------------------------------- #


def _random_trace(rng, length, *, nblocks=24, ndata=16):
    """A block-aligned access stream: every pc starts its own i-block."""
    entries = []
    for _ in range(length):
        pc = rng.randrange(nblocks) * MINI.block_size
        if rng.random() < 0.4:
            daddr = 0x8000 + rng.randrange(ndata) * MINI.block_size
            dwrite = rng.random() < 0.5
            op = Op.STORE if dwrite else Op.LOAD
            entries.append(TraceEntry(pc, op, daddr=daddr, dwrite=dwrite))
        else:
            entries.append(TraceEntry(pc, Op.ALU))
    return entries


def _events_of(trace):
    """The bound-event stream a digest of ``trace`` would expand to."""
    events = []
    for entry in trace:
        events.append((0, entry.pc // MINI.block_size, "fn"))
        if entry.daddr is not None:
            kind = 2 if entry.dwrite else 1
            events.append((kind, entry.daddr // MINI.block_size, "fn"))
    return events


class TestDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_cold_pass_is_bit_exact(self, seed):
        """From the empty state the analysis is concrete: zero slack."""
        trace = _random_trace(random.Random(seed), 200)
        concrete = MemoryHierarchy(MINI).run(trace).stall_cycles
        analyzer = BoundsAnalyzer(_events_of(trace), len(trace), memory=MINI)
        acc = analyzer.run_pass(MemState())
        assert acc.lower == acc.upper == concrete

    @pytest.mark.parametrize("seed", range(10))
    def test_steady_bounds_cover_every_later_pass(self, seed):
        trace = _random_trace(random.Random(seed), 200)
        analyzer = BoundsAnalyzer(_events_of(trace), len(trace), memory=MINI)
        bounds = analyzer.analyze()
        hierarchy = MemoryHierarchy(MINI)
        hierarchy.run(trace)  # cold
        hierarchy.run(trace)  # warm-up (both engines warm up twice)
        for _ in range(4):  # passes 3..6 are all valid "steady" reads
            before = hierarchy.stats.stall_cycles
            hierarchy.run(trace)
            delta = hierarchy.stats.stall_cycles - before
            low = bounds.steady.lower_stalls
            high = bounds.steady.upper_stalls
            assert low <= delta <= high

    @pytest.mark.parametrize("seed", range(10))
    def test_joined_state_covers_both_branches(self, seed):
        """A pass from ``a JOIN b`` must bound the pass from a and from b."""
        rng = random.Random(1000 + seed)
        prefix_a = _random_trace(rng, 60)
        prefix_b = _random_trace(rng, 60)
        suffix = _random_trace(rng, 120)
        suffix_analyzer = BoundsAnalyzer(
            _events_of(suffix), len(suffix), memory=MINI
        )

        branches = []
        for prefix in (prefix_a, prefix_b):
            hierarchy = MemoryHierarchy(MINI)
            hierarchy.run(prefix)
            before = hierarchy.stats.stall_cycles
            hierarchy.run(suffix)
            branches.append(hierarchy.stats.stall_cycles - before)

        states = []
        for prefix in (prefix_a, prefix_b):
            st = MemState()
            BoundsAnalyzer(
                _events_of(prefix), len(prefix), memory=MINI
            ).run_pass(st)
            states.append(st)
        joined = states[0].join(states[1])
        acc = suffix_analyzer.run_pass(joined)
        for concrete in branches:
            assert acc.lower <= concrete <= acc.upper


# --------------------------------------------------------------------------- #
# mini-IR programs: digest shape, re-binding, conflicts, persistence          #
# --------------------------------------------------------------------------- #


def _leaf(name, *, alu=4, loads=0):
    fb = FunctionBuilder(name, saves=0)
    block = fb.block("entry").alu(alu)
    for i in range(loads):
        block.load("buf", i * MINI.block_size)
    fb.ret()
    return fb.build()


def _caller(name, callee):
    fb = FunctionBuilder(name, saves=0)
    fb.block("entry").alu(2)
    fb.call(callee, "mid")
    fb.block("mid").alu(2)
    fb.call(callee, "done")
    fb.block("done").alu(2)
    fb.ret()
    return fb.build()


def _program(placement, *fns):
    p = Program()
    for fn in fns:
        p.add(fn)
    p.layout(
        lambda prog: {
            name: prog.text_base + offset for name, offset in placement.items()
        }
    )
    return p


def _walk(program, root="f"):
    walker = Walker(program, data_env={"buf": 0x8000})
    return walker.walk([EnterEvent(root), ExitEvent(root)])


def _placements(program):
    return {name: program.address_of(name) for name in program.names()}


def _steady_delta(program, trace, passes=3):
    hierarchy = MemoryHierarchy(MINI)
    for _ in range(passes - 1):
        hierarchy.run(trace)
    before = hierarchy.stats.stall_cycles
    hierarchy.run(trace)
    return hierarchy.stats.stall_cycles - before


class TestDigest:
    def test_digest_replays_the_exact_access_stream(self):
        """Runs + data events reconstruct every (pc, daddr, dwrite)."""
        p = _program({"f": 0}, _leaf("f", alu=2, loads=1))
        res = _walk(p)
        digest = digest_trace(res.trace, p)
        kinds = [event[0] for event in digest.events]
        assert "R" in kinds and "W" in kinds  # explicit load + RA save
        executed = sum(e[3] for e in digest.events if e[0] == "X")
        assert executed == digest.instructions == len(res.trace)

        replayed = []
        for kind, fn, a, b in digest.events:
            if kind == "X":
                base = p.address_of(fn)
                replayed.extend(
                    (base + a + 4 * i, None, False) for i in range(b)
                )
            else:
                pc, _, _ = replayed[-1]
                replayed[-1] = (pc, a, kind == "W")
        blk = MemoryConfig.block_size
        expected = [
            (t.pc, None if t.daddr is None else t.daddr // blk, t.dwrite)
            for t in res.trace
        ]
        assert replayed == expected

    def test_digest_is_layout_independent(self):
        f, g = _caller("f", "g"), _leaf("g")
        p1 = _program({"f": 0, "g": 128}, f, g)
        first = digest_trace(_walk(p1).trace, p1)
        p2 = _program({"f": 32, "g": 512}, _caller("f", "g"), _leaf("g"))
        second = digest_trace(_walk(p2).trace, p2)
        assert first == second

    def test_unowned_pc_is_rejected(self):
        p = _program({"f": 0}, _leaf("f"))
        with pytest.raises(ValueError, match="outside every laid-out"):
            digest_trace([TraceEntry(0x99990, Op.ALU)], p)

    def test_rebinding_matches_a_fresh_walk(self):
        """digest@L1 bound to L2 == digest of a walk actually laid out at L2."""
        layout_two = {"f": 64, "g": 512}
        p1 = _program({"f": 0, "g": 128}, _caller("f", "g"), _leaf("g"))
        digest = digest_trace(_walk(p1).trace, p1)
        p2 = _program(layout_two, _caller("f", "g"), _leaf("g"))
        fresh = digest_trace(_walk(p2).trace, p2)
        placements = _placements(p2)
        assert bind_digest(digest, placements) == bind_digest(fresh, placements)
        rebound = bounds_from_digest(digest, placements, memory=MINI)
        direct = bounds_from_digest(fresh, placements, memory=MINI)
        assert rebound == direct


class TestMiniPrograms:
    def _bounds_at(self, placement):
        p = _program(placement, _caller("f", "g"), _leaf("g", alu=6))
        res = _walk(p)
        digest = digest_trace(res.trace, p)
        bounds = bounds_from_digest(digest, _placements(p), memory=MINI)
        return p, res.trace, bounds

    def test_cold_and_steady_exact_on_concrete_program(self):
        p, trace, bounds = self._bounds_at({"f": 0, "g": 128})
        assert bounds.cold.exact
        cold = MemoryHierarchy(MINI).run(trace).stall_cycles
        assert bounds.cold.lower_stalls == cold
        steady = _steady_delta(p, trace)
        low = bounds.steady.lower_stalls
        high = bounds.steady.upper_stalls
        assert low <= steady <= high

    def test_icache_conflict_shows_up_in_steady_bounds(self):
        """g one i-cache apart from f evicts it on every call, forever."""
        _, _, separate = self._bounds_at({"f": 0, "g": 128})
        _, _, conflict = self._bounds_at({"f": 0, "g": MINI.icache_size})
        assert conflict.steady.lower_stalls > separate.steady.upper_stalls

    def test_per_function_attribution_covers_the_totals(self):
        _, _, bounds = self._bounds_at({"f": 0, "g": MINI.icache_size})
        for phase in (bounds.cold, bounds.steady):
            assert set(phase.by_function) <= {"f", "g"}
            lows = sum(pair[0] for pair in phase.by_function.values())
            highs = sum(pair[1] for pair in phase.by_function.values())
            assert (lows, highs) == (phase.lower_stalls, phase.upper_stalls)


# --------------------------------------------------------------------------- #
# real cells, mutations, the facade and the CLI                               #
# --------------------------------------------------------------------------- #


def _has_numpy():
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


class TestCells:
    @pytest.mark.parametrize("stack,config", [("tcpip", "CLO"), ("rpc", "STD")])
    def test_fast_engine_invariant(self, stack, config):
        bounds, findings = check_cell_bounds(stack, config, engine="fast")
        assert findings == []
        assert bounds.cold.exact  # cold starts empty: slack = model bug

    @pytest.mark.skipif(not _has_numpy(), reason="gensim needs numpy")
    def test_gensim_engine_invariant(self):
        bounds, findings = check_cell_bounds("tcpip", "CLO", engine="gensim")
        assert findings == []
        assert bounds.cold.exact

    def test_mutated_layouts_stay_bounded(self):
        from repro.search.artifact import pack_genome
        from repro.search.evaluate import CellEvaluator
        from repro.search.generators import incumbent_genome, mutate

        evaluator = CellEvaluator("tcpip", "CLO")
        base = incumbent_genome(evaluator.program)
        try:
            for seed in range(3):
                rng = random.Random(seed)
                genome = base
                for _ in range(3):
                    genome = mutate(genome, rng)
                placements = pack_genome(evaluator.program, genome)
                bounds = bounds_from_digest(evaluator.digest, placements)
                score = evaluator.score(placements)
                low = bounds.steady.lower
                high = bounds.steady.upper
                assert low <= score.steady_mcpi <= high
        finally:
            evaluator.restore_default()


class TestFacade:
    def test_api_analyze_attaches_bounds(self):
        from repro import api

        cell = api.analyze(api.AnalyzeSpec(
            api.RunSpec("tcpip", "CLO"), check_conflicts=False, bounds=True
        ))
        assert cell.ok
        assert cell.bounds is not None
        assert cell.bounds.cold.exact
        payload = cell.to_json()
        assert payload["bounds"]["steady"]["lower_mcpi"] <= (
            payload["bounds"]["steady"]["upper_mcpi"]
        )

    def test_api_analyze_defaults_to_no_bounds(self):
        from repro import api

        cell = api.analyze(
            api.AnalyzeSpec(api.RunSpec("tcpip", "CLO"), check_conflicts=False)
        )
        assert cell.bounds is None


class TestCli:
    def test_clean_cell_exits_zero(self, capsys):
        from repro.__main__ import analyze_main

        code = analyze_main(["tcpip", "CLO", "--static-only", "--bounds"])
        assert code == 0
        assert "static latency bounds" in capsys.readouterr().out

    def test_json_stdout_is_pure_json(self, capsys):
        from repro.__main__ import analyze_main

        code = analyze_main(
            ["tcpip", "CLO", "--static-only", "--bounds", "--json", "-"]
        )
        assert code == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 1
        bounds = reports[0]["bounds"]
        assert bounds["cold"]["lower_mcpi"] == bounds["cold"]["upper_mcpi"]

    def test_findings_exit_one(self, capsys, monkeypatch):
        from repro import api
        from repro.__main__ import analyze_main
        from repro.analysis import CellAnalysis
        from repro.analysis.bounds import BOUNDS_VIOLATION
        from repro.analysis.verify import Finding

        def fake_analyze(spec, **kwargs):
            return CellAnalysis(
                stack=spec.run.stack,
                config=spec.run.config,
                findings=[
                    (
                        "bounds",
                        Finding(BOUNDS_VIOLATION, "tcpip/CLO", "escaped"),
                    )
                ],
            )

        monkeypatch.setattr(api, "analyze", fake_analyze)
        assert analyze_main(["tcpip", "CLO", "--bounds"]) == 1
        capsys.readouterr()

    def test_internal_error_exits_two(self, capsys, monkeypatch):
        from repro import api
        from repro.__main__ import analyze_main

        def broken_analyze(spec, **kwargs):
            raise RuntimeError("injected analyzer crash")

        monkeypatch.setattr(api, "analyze", broken_analyze)
        assert analyze_main(["tcpip", "CLO", "--bounds"]) == 2
        assert "ANALYZER ERROR" in capsys.readouterr().err
