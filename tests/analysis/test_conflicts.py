"""Static conflict predictor: synthetic layouts, soundness, cross-validation.

The synthetic cases pin down the prediction rule on hand-placed layouts
(same set -> pair, disjoint sets -> no pair, bigger-than-cache -> self
pair); the fabricated-matrix cases prove ``validate_prediction`` actually
fails on an unpredicted eviction; the real-cell case is the tentpole
soundness claim — everything the simulator observed was predicted.
"""

import pytest

from repro.analysis.conflicts import (
    CONFLICT_FALSE_NEGATIVE,
    live_functions,
    observed_pairs,
    predict_conflicts,
    render_prediction,
    validate_prediction,
)
from repro.arch.memory import MemoryConfig
from repro.core.ir import FunctionBuilder
from repro.core.program import Program
from repro.obs.attribution import UNATTRIBUTED
from repro.obs.conflicts import ConflictMatrix

ICACHE = 1024
MEM = MemoryConfig(icache_size=ICACHE)


def _fn(name, alu=4, *, callee=None):
    fb = FunctionBuilder(name, saves=1)
    fb.block("entry").alu(alu)
    if callee:
        fb.call(callee, "done")
        fb.block("done").alu(1)
    fb.ret()
    return fb.build()


def _laid_out(placement, **fns):
    """A program with the named functions at hand-picked offsets."""
    p = Program()
    for fn in fns.values():
        p.add(fn)
    p.layout(lambda prog: {
        name: prog.text_base + offset for name, offset in placement.items()
    })
    return p


class TestPrediction:
    def test_requires_layout(self):
        p = Program()
        p.add(_fn("a"))
        with pytest.raises(ValueError):
            predict_conflicts(p)

    def test_cache_distance_apart_conflicts(self):
        """Two functions one i-cache apart map to identical sets."""
        p = _laid_out({"a": 0, "b": ICACHE}, a=_fn("a"), b=_fn("b"))
        pred = predict_conflicts(p, memory=MEM)
        assert pred.covers("a", "b") and pred.covers("b", "a")
        assert pred.live == {"a", "b"}

    def test_disjoint_sets_do_not_conflict(self):
        a, b = _fn("a"), _fn("b")
        p = _laid_out({"a": 0, "b": ICACHE // 2}, a=a, b=b)
        # precondition: both footprints fit in their half of the cache
        assert p.size_of("a") <= ICACHE // 2
        assert p.size_of("b") <= ICACHE // 2
        pred = predict_conflicts(p, memory=MEM)
        assert not pred.covers("a", "b")

    def test_function_larger_than_cache_self_aliases(self):
        big = _fn("big", alu=300)  # ~1.2KB of body > 1KB of cache
        p = _laid_out({"big": 0}, big=big)
        assert p.size_of("big") > ICACHE
        pred = predict_conflicts(p, memory=MEM)
        assert pred.covers("big", "big")

    def test_likely_is_subset_of_pairs(self):
        from repro.harness.configs import build_configured_program

        build = build_configured_program("tcpip", "OUT")
        pred = predict_conflicts(build.program)
        assert pred.likely <= pred.pairs
        assert pred.pairs  # a real build is never conflict-free


class TestLiveness:
    def test_aliased_away_function_not_live(self):
        """An entry-aliased original is unreachable unless a static call
        still names it — exactly the walker's resolution rule."""
        p = Program()
        p.add(_fn("leaf"))
        p.add(_fn("leaf2"))
        p.alias_entry("leaf", "leaf2")
        assert live_functions(p) == {"leaf2"}

    def test_static_callee_closure(self):
        p = Program()
        p.add(_fn("caller", callee="helper"))
        p.add(_fn("helper"))
        assert live_functions(p) == {"caller", "helper"}


class TestValidation:
    def _prediction(self):
        p = _laid_out({"a": 0, "b": ICACHE}, a=_fn("a"), b=_fn("b"))
        return predict_conflicts(p, memory=MEM)

    def test_observed_subset_passes(self):
        pred = self._prediction()
        m = ConflictMatrix()
        m.record("a", "b", 0)
        m.record("b", "a", 0)
        assert validate_prediction(pred, [m]) == []

    def test_unpredicted_eviction_is_a_finding(self):
        pred = self._prediction()
        m = ConflictMatrix()
        m.record("ghost", "phantom", 3)
        findings = validate_prediction(pred, [m], context="unit")
        assert [f.kind for f in findings] == [CONFLICT_FALSE_NEGATIVE]
        assert "ghost" in findings[0].detail and "unit" in findings[0].detail

    def test_observed_pairs_normalization(self):
        m = ConflictMatrix()
        m.record(UNATTRIBUTED, UNATTRIBUTED, 0)  # gap-on-gap: ignored
        m.record("f", UNATTRIBUTED, 1)           # gap block: still owed
        m.record("g", "f", 2)
        m.record("f", "g", 2)                    # direction collapses
        assert observed_pairs([m]) == {
            tuple(sorted((UNATTRIBUTED, "f"))),
            ("f", "g"),
        }

    def test_render_smoke(self):
        pred = self._prediction()
        text = render_prediction(pred)
        assert "live functions: 2" in text
        assert "a <-> b" in text


class TestRealCell:
    def test_no_false_negatives_against_simulation(self):
        """The soundness claim, end to end on one real cell: every eviction
        pair the simulator records was statically predicted."""
        from repro.harness.configs import build_configured_program
        from repro.harness.profile import profile_cell

        build = build_configured_program("tcpip", "OUT")
        pred = predict_conflicts(build.program)
        cell = profile_cell("tcpip", "OUT")
        matrices = [cell.cold.conflicts, cell.steady.conflicts]
        assert observed_pairs(matrices)  # the corpus is non-trivial
        assert validate_prediction(pred, matrices, context="tcpip/OUT") == []
