"""Equivalence checker: real transforms prove clean, broken ones are caught.

Each transform gets a positive case (the real implementation passes its
check) and a negative case (a deliberately miscompiled variant — a dropped
store, a flipped branch target, an extra instruction — produces an
``equiv-mismatch`` naming the divergence).
"""

import pytest

from repro.analysis.equiv import (
    EQUIV_MISMATCH,
    EquivalenceAuditor,
    chained_trace,
    check_clone_equivalence,
    check_inline_equivalence,
    check_outline_equivalence,
    check_path_inline_equivalence,
    check_specialize_equivalence,
    collect_conds,
    compare_traces,
    enumerate_assignments,
    path_trace,
)
from repro.arch.isa import Op
from repro.core.clone import clone_functions, clone_name
from repro.core.inline import inline_call
from repro.core.ir import FunctionBuilder, Instruction, Jump
from repro.core.outline import outline_function
from repro.core.pathinline import path_inline
from repro.core.program import Program
from repro.core.specialize import partially_evaluate
from repro.harness.configs import CONFIG_NAMES, build_configured_program


def _branchy(name="f", *, callee=None):
    fb = FunctionBuilder(name, saves=1)
    fb.block("a").alu(2).load("heap")
    fb.branch("err", "cold", "warm", predict=False)
    fb.block("warm").alu(3).store("heap")
    if callee:
        fb.call(callee, "done")
    else:
        fb.goto("done")
    fb.block("done").alu(1)
    fb.ret()
    fb.block("cold").alu(9)
    fb.jump("done")
    return fb.build()


def _leaf(name="leaf"):
    fb = FunctionBuilder(name, saves=0, leaf=True)
    fb.block("x").alu(2).lda(1).load("tcb")
    fb.ret()
    return fb.build()


def _layered_program():
    """bottom -> mid -> top chained through dynamic dispatch."""
    p = Program()
    for name, has_up in (("bottom", True), ("mid", True), ("top", False)):
        fb = FunctionBuilder(name, saves=1)
        fb.block("work").alu(3).lda(2).load("heap")
        fb.branch("slow", "slowpath", "go", predict=False)
        fb.block("go").alu(1)
        if has_up:
            fb.call_dynamic("up", "done")
            fb.block("done").alu(1).store("heap")
        fb.ret()
        fb.block("slowpath").alu(5)
        fb.jump("go")
        p.add(fb.build())
    return p


class TestOutline:
    def test_real_outline_equivalent(self):
        p = Program()
        fn = _branchy()
        p.add(fn)
        before = fn.clone(fn.name)
        outline_function(fn)
        assert fn.blocks[-1].label == "cold"  # it did move something
        assert check_outline_equivalence(before, fn, program=p) == []

    def test_reordered_stream_caught(self):
        fn = _branchy()
        before = fn.clone(fn.name)
        outline_function(fn)
        fn.block("warm").instructions.reverse()  # ALU/STORE swapped
        findings = check_outline_equivalence(before, fn)
        assert [f.kind for f in findings] == [EQUIV_MISMATCH]
        assert "diverge" in findings[0].detail

    def test_dropped_store_caught(self):
        fn = _branchy()
        before = fn.clone(fn.name)
        outline_function(fn)
        warm = fn.block("warm")
        warm.instructions = [
            i for i in warm.instructions if i.op is not Op.STORE
        ]
        assert check_outline_equivalence(before, fn)


class TestClone:
    def _cloned(self):
        p = Program()
        p.add(_branchy("caller", callee="leaf"))
        p.add(_leaf())
        clone_functions(p, ["caller", "leaf"])
        return p

    def test_real_clone_equivalent(self):
        p = self._cloned()
        for base in ("caller", "leaf"):
            assert check_clone_equivalence(p, base, clone_name(base)) == []

    def test_retargeted_call_resolves_identically(self):
        """The clone calls leaf@clone, the original's leaf is aliased to
        it — the normalized streams agree by construction."""
        p = self._cloned()
        assert p.resolve_entry("leaf") == clone_name("leaf")
        t = path_trace(p.function("caller"), {}, program=p)
        assert ("call", clone_name("leaf")) in t.tokens

    def test_extra_instruction_caught(self):
        p = self._cloned()
        p.function(clone_name("caller")).block("warm").instructions.append(
            Instruction(Op.ALU)
        )
        findings = check_clone_equivalence(p, "caller", clone_name("caller"))
        assert [f.kind for f in findings] == [EQUIV_MISMATCH]


class TestInline:
    def _programs(self):
        before, after = Program(), Program()
        for p in (before, after):
            p.add(_branchy("caller", callee="leaf"))
            p.add(_leaf())
        inline_call(after, "caller", "warm", simplify=0.5)
        return before, after

    def test_real_inline_equivalent(self):
        before, after = self._programs()
        assert check_inline_equivalence(before, after, "caller", "warm") == []

    def test_deletion_budget_enforced(self):
        before, after = self._programs()
        findings = check_inline_equivalence(
            before, after, "caller", "warm", max_deletions=0
        )
        assert findings and "budget" in findings[0].detail

    def test_wrong_continuation_caught(self):
        before, after = self._programs()
        # miscompile: the inlined body's return jumps to the wrong block
        for blk in after.function("caller").blocks:
            if (blk.label.startswith("warm$leaf$")
                    and isinstance(blk.terminator, Jump)):
                blk.terminator.target = "cold"
        findings = check_inline_equivalence(before, after, "caller", "warm")
        assert [f.kind for f in findings] == [EQUIV_MISMATCH]


class TestPathInline:
    def test_real_path_inline_equivalent(self):
        p = _layered_program()
        path_inline(p, "merged", ["bottom", "mid", "top"],
                    simplify_per_join=2)
        findings = check_path_inline_equivalence(
            p, "merged", ["bottom", "mid", "top"], max_deletions_per_join=2
        )
        assert findings == []

    def test_chained_trace_has_markers(self):
        p = _layered_program()
        t = chained_trace(p, ["bottom", "mid", "top"], {})
        kinds = [tok[0] for tok in t.tokens]
        assert kinds.count("enter") == 2 and kinds.count("exit") == 2

    def test_over_deletion_caught(self):
        p = _layered_program()
        path_inline(p, "merged", ["bottom", "mid", "top"],
                    simplify_per_join=3)
        findings = check_path_inline_equivalence(
            p, "merged", ["bottom", "mid", "top"], max_deletions_per_join=1
        )
        assert findings and "budget" in findings[0].detail

    def test_dropped_member_store_caught(self):
        p = _layered_program()
        path_inline(p, "merged", ["bottom", "mid", "top"])
        merged = p.function("merged")
        for blk in merged.blocks:
            blk.instructions = [
                i for i in blk.instructions if i.op is not Op.STORE
            ]
        findings = check_path_inline_equivalence(
            p, "merged", ["bottom", "mid", "top"]
        )
        assert [f.kind for f in findings] == [EQUIV_MISMATCH]


class TestSpecialize:
    def test_real_specialization_equivalent(self):
        fn = _branchy()
        before = fn.clone(fn.name)
        partially_evaluate(fn, {"err": False}, constant_regions=("heap",),
                           fold_fraction=1.0)
        assert check_specialize_equivalence(
            before, fn, {"err": False}, constant_regions=("heap",)
        ) == []

    def test_wrongly_folded_branch_caught(self):
        """Folding a branch the pins do NOT cover diverges under the
        assignment that takes the other arm."""
        fn = _branchy()
        before = fn.clone(fn.name)
        partially_evaluate(fn, {"err": False})
        findings = check_specialize_equivalence(before, fn, {"err": True})
        assert [f.kind for f in findings] == [EQUIV_MISMATCH]

    def test_unpinned_load_deletion_caught(self):
        fn = _branchy()
        before = fn.clone(fn.name)
        partially_evaluate(fn, {"err": False}, constant_regions=("heap",),
                           fold_fraction=1.0)
        findings = check_specialize_equivalence(
            before, fn, {"err": False}, constant_regions=()
        )
        assert [f.kind for f in findings] == [EQUIV_MISMATCH]


class TestEnumeration:
    def test_exhaustive_when_small(self):
        conds = [("f", "a"), ("f", "b")]
        assert len(enumerate_assignments(conds)) == 4

    def test_sparse_when_large(self):
        conds = [("f", f"c{i}") for i in range(20)]
        assignments = enumerate_assignments(conds)
        assert len(assignments) == 1 + 2 * 20

    def test_pinned_excluded(self):
        conds = [("f", "a"), ("f", "pinned")]
        assignments = enumerate_assignments(conds, pinned={"pinned": True})
        assert len(assignments) == 2
        assert all(a["pinned"] is True for a in assignments)

    def test_collect_conds_keys_by_origin(self):
        fn = _branchy()
        assert collect_conds(fn) == [("f", "err")]


class TestCompareTraces:
    def test_lenient_on_truncation(self):
        from repro.analysis.equiv import Trace

        t0 = Trace((("i", Op.ALU, None),) * 5, True)
        t1 = Trace((("i", Op.ALU, None),) * 3, False)
        assert compare_traces(t0, t1) is None

    def test_extra_tokens_rejected(self):
        from repro.analysis.equiv import Trace

        t0 = Trace((("i", Op.ALU, None),), False)
        t1 = Trace((("i", Op.ALU, None), ("i", Op.MUL, None)), False)
        assert "extra" in compare_traces(t0, t1)


class TestAuditor:
    @pytest.mark.parametrize("stack", ["tcpip", "rpc"])
    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_every_cell_passes_audit(self, stack, config):
        """The real pipeline proves equivalent at every stage, for every
        cell — the static analogue of the differential sweep."""
        from repro.harness.configs import PIN_SIMPLIFY_PER_JOIN

        auditor = EquivalenceAuditor(simplify_per_join=PIN_SIMPLIFY_PER_JOIN)
        build_configured_program(stack, config, stage_hook=auditor)
        assert auditor.findings == [], (stack, config)
        assert auditor.stages_seen[0] == "models"
