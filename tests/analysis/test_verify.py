"""IR verifier: clean builds report nothing, every corruption class is caught.

The corruption-injection half mirrors mutation testing: a seeded-random
mutator breaks a known-good program in one of the documented ways and the
verifier must report the matching finding kind — evidence the checks are
live, not vacuously green.
"""

import random

import pytest

from repro.analysis.verify import (
    ALIAS_CYCLE,
    BAD_MEMORY_OP,
    DANGLING_TARGET,
    DUPLICATE_LABEL,
    LAYOUT_OVERLAP,
    MISSING_CALLEE,
    NO_BLOCKS,
    STATIC_RECURSION,
    UNPAIRED_INLINE,
    UNREACHABLE_BLOCK,
    UNTERMINATED,
    VerificationError,
    assert_well_formed,
    verify_function,
    verify_program,
)
from repro.arch.isa import Op
from repro.core.ir import (
    BasicBlock,
    CallStatic,
    DataRef,
    Function,
    FunctionBuilder,
    InlineExit,
    Instruction,
    Jump,
)
from repro.core.program import Program
from repro.harness.configs import CONFIG_NAMES, build_configured_program


def _forge_instruction(op, dref):
    """Build an Instruction that violates the memory-op invariant.

    The dataclass is frozen and ``__post_init__`` enforces the invariant,
    so corruption goes through ``object.__setattr__`` — the same way a
    buggy C extension or pickle round-trip could smuggle one in.
    """
    ins = Instruction.__new__(Instruction)
    object.__setattr__(ins, "op", op)
    object.__setattr__(ins, "dref", dref)
    return ins


def _small_program():
    p = Program()
    for name, callee in (("leaf", None), ("caller", "leaf")):
        fb = FunctionBuilder(name, saves=1)
        fb.block("a").alu(2).load("heap")
        fb.branch("c", "b", "d", predict=True)
        fb.block("b").alu(1)
        if callee:
            fb.call(callee, "d")
        fb.block("d").store("heap")
        fb.ret()
        p.add(fb.build())
    return p


class TestCleanPrograms:
    def test_small_program_clean(self):
        assert verify_program(_small_program()) == []

    def test_assert_well_formed_passes(self):
        assert_well_formed(_small_program())

    @pytest.mark.parametrize("stack", ["tcpip", "rpc"])
    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_every_build_stage_clean(self, stack, config):
        """The verifier reports zero findings after every pipeline stage
        of every (stack, config) cell — the tentpole guarantee."""
        stages = []

        def hook(stage, build):
            stages.append(stage)
            assert verify_program(build.program) == [], (stack, config, stage)

        build_configured_program(stack, config, stage_hook=hook)
        assert stages[0] == "models" and stages[-1] == "layout"


# --------------------------------------------------------------------------- #
# the corruption mutator                                                      #
# --------------------------------------------------------------------------- #


def _blocks_of(program):
    return [
        (fn, blk) for fn in program.functions() for blk in fn.blocks
    ]


def corrupt(program, kind, rng):
    """Break ``program`` in one documented way; returns the expected kind."""
    if kind == DANGLING_TARGET:
        fn, blk = rng.choice([
            (f, b) for f, b in _blocks_of(program)
            if isinstance(b.terminator, Jump)
        ] or [_blocks_of(program)[0]])
        if isinstance(blk.terminator, Jump):
            blk.terminator.target = "nowhere$corrupted"
        else:
            blk.terminator = Jump("nowhere$corrupted")
        return DANGLING_TARGET
    if kind == DUPLICATE_LABEL:
        fn = rng.choice([f for f in program.functions() if len(f.blocks) >= 2])
        fn.blocks[-1].label = fn.blocks[0].label
        return DUPLICATE_LABEL
    if kind == UNPAIRED_INLINE:
        fn = rng.choice(program.functions())
        other = rng.choice(program.names())
        entry = fn.entry
        fn.blocks.insert(
            1, BasicBlock(label="corrupt$exit",
                          terminator=InlineExit(callee=other, next=entry))
        )
        fn.blocks[0].terminator = Jump("corrupt$exit")
        return UNPAIRED_INLINE
    if kind == MISSING_CALLEE:
        sites = [
            (f, b) for f, b in _blocks_of(program)
            if isinstance(b.terminator, CallStatic)
        ]
        if sites:
            _fn, blk = rng.choice(sites)
            blk.terminator.callee = "ghost$function"
        else:
            fn = rng.choice(program.functions())
            last = fn.blocks[-1]
            last.terminator = CallStatic("ghost$function", fn.entry)
        return MISSING_CALLEE
    if kind == BAD_MEMORY_OP:
        candidates = [(f, b) for f, b in _blocks_of(program) if b.instructions]
        _fn, blk = rng.choice(candidates)
        blk.instructions[0] = _forge_instruction(Op.ALU, DataRef("heap"))
        return BAD_MEMORY_OP
    raise AssertionError(kind)


CORRUPTION_KINDS = (
    DANGLING_TARGET, DUPLICATE_LABEL, UNPAIRED_INLINE, MISSING_CALLEE,
    BAD_MEMORY_OP,
)


class TestCorruptionInjection:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_each_kind_detected_on_small_program(self, kind):
        rng = random.Random(1234)
        p = _small_program()
        expected = corrupt(p, kind, rng)
        kinds = {f.kind for f in verify_program(p)}
        assert expected in kinds

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_sweep_over_real_builds(self, seed):
        """Random (cell, corruption) pairs against the real pipeline
        output: whatever the mutator breaks, the verifier names."""
        rng = random.Random(1000 + seed)
        stack = rng.choice(["tcpip", "rpc"])
        config = rng.choice(list(CONFIG_NAMES))
        build = build_configured_program(stack, config)
        kind = rng.choice(CORRUPTION_KINDS)
        expected = corrupt(build.program, kind, rng)
        kinds = {f.kind for f in verify_program(build.program)}
        assert expected in kinds, (stack, config, kind, kinds)

    def test_assert_well_formed_raises_with_findings(self):
        p = _small_program()
        corrupt(p, DANGLING_TARGET, random.Random(7))
        with pytest.raises(VerificationError) as exc:
            assert_well_formed(p, stage="outline")
        assert exc.value.stage == "outline"
        assert any(f.kind == DANGLING_TARGET for f in exc.value.findings)
        assert "outline" in str(exc.value)


class TestStructuralChecks:
    def test_no_blocks(self):
        findings = verify_function(Function(name="empty"))
        assert [f.kind for f in findings] == [NO_BLOCKS]

    def test_unterminated_block(self):
        fn = Function(name="f", blocks=[BasicBlock(label="a")])
        assert UNTERMINATED in {f.kind for f in verify_function(fn)}

    def test_unreachable_block(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.ret()
        fb.block("orphan").alu(1)
        fb.ret()
        fn = fb.build()
        findings = verify_function(fn)
        assert {f.kind for f in findings} == {UNREACHABLE_BLOCK}
        assert findings[0].block == "orphan"

    def test_inline_scope_mismatch_across_paths(self):
        """A join reachable with different inline-scope stacks would
        desynchronize the walker's frame stack."""
        from repro.core.ir import CondBranch, InlineEnter

        fb = FunctionBuilder("g")
        fb.block("a").alu(1)
        fb.ret()
        g = fb.build()
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.block("join").alu(1)
        fb.ret()
        fn = fb.build()
        fn.blocks[0].terminator = CondBranch("c", "enterer", "join")
        fn.blocks.append(
            BasicBlock(label="enterer",
                       terminator=InlineEnter(callee="g", next="join"))
        )
        p = Program()
        p.add(g)
        p.add(fn)
        kinds = {f.kind for f in verify_program(p)}
        assert "inline-mismatch" in kinds or UNPAIRED_INLINE in kinds

    def test_static_recursion(self):
        p = Program()
        for name, callee in (("a", "b"), ("b", "a")):
            fb = FunctionBuilder(name)
            fb.block("x").alu(1)
            fb.call(callee, "done")
            fb.block("done").alu(1)
            fb.ret()
            p.add(fb.build())
        assert STATIC_RECURSION in {f.kind for f in verify_program(p)}

    def test_alias_cycle(self):
        p = _small_program()
        p.alias_entry("x", "y")
        p.alias_entry("y", "x")
        assert ALIAS_CYCLE in {f.kind for f in verify_program(p)}

    def test_alias_to_missing_function(self):
        p = _small_program()
        p.alias_entry("leaf", "ghost$clone")
        assert MISSING_CALLEE in {f.kind for f in verify_program(p)}

    def test_layout_overlap(self):
        p = _small_program()
        p.layout(lambda prog: {name: prog.text_base for name in prog.names()})
        assert LAYOUT_OVERLAP in {f.kind for f in verify_program(p)}


class TestVerifyIrHook:
    def test_experiment_build_verifies_under_env(self, monkeypatch):
        """REPRO_VERIFY_IR=1 routes experiment builds through the
        stage-hooked builder with the verifier attached."""
        from repro.harness.experiment import (
            Experiment,
            verify_ir_enabled,
        )

        monkeypatch.setenv("REPRO_VERIFY_IR", "1")
        assert verify_ir_enabled()
        result = Experiment("tcpip", "OUT").run(samples=1)
        assert result.samples[0].trace_length > 0

    def test_disabled_by_default(self, monkeypatch):
        from repro.harness.experiment import verify_ir_enabled

        monkeypatch.delenv("REPRO_VERIFY_IR", raising=False)
        assert not verify_ir_enabled()
