"""The CLI and the facade expose the same verbs, through the facade only."""

import inspect

import repro.__main__ as cli
from repro import api


class TestRegistrySync:
    def test_every_facade_verb_has_a_cli_subcommand(self):
        # run/sweep surface as the default table driver, not a subcommand
        assert set(cli.SUBCOMMANDS) == set(api.FACADE_VERBS) - {"run", "sweep"}

    def test_every_subcommand_is_callable(self):
        for name, entry in cli.SUBCOMMANDS.items():
            assert callable(entry), name

    def test_facade_verbs_are_exported(self):
        for name in api.FACADE_VERBS:
            assert callable(getattr(api, name)), name
            assert name in api.__all__


class TestNoDirectCallSites:
    """``python -m repro`` goes through :mod:`repro.api` exclusively.

    Source inspection, not mocking: a reintroduced direct harness call
    would reopen the keyword-pile back doors the facade closed.
    """

    def test_main_never_bypasses_the_facade(self):
        source = inspect.getsource(cli)
        for symbol in (
            "profile_cell",
            "compute_fault_table",
            "run_traffic_study",
            "run_resilience_study",
            "run_datalayout_study",
            "search_cell",
            "analyze_cell",
            "Experiment(",
            "run_all_configs",
        ):
            assert symbol not in source, f"CLI calls {symbol} directly"
