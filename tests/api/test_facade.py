"""Tests for the ``repro.api`` facade: specs, settings, and the verbs."""

import dataclasses

import pytest

from repro import api
from repro.api import (
    AnalyzeSpec,
    DatalayoutSpec,
    FaultsSpec,
    ProfileSpec,
    RunSpec,
    SearchSpec,
    Settings,
    SweepSpec,
    run,
    search,
    settings_for,
    sweep,
)
from repro.api.result import Result
from repro.api.settings import CHAOS_ENV, ENGINE_ENV, VERIFY_IR_ENV
from repro.harness.experiment import Experiment, run_all_configs


class TestRunSpec:
    def test_is_frozen(self):
        spec = RunSpec("tcpip", "STD")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.config = "CLO"

    def test_rejects_unknown_stack(self):
        with pytest.raises(ValueError, match="stack"):
            RunSpec("quic", "STD")

    def test_rejects_unknown_config(self):
        with pytest.raises(ValueError, match="configuration"):
            RunSpec("tcpip", "MAX")

    def test_with_config_copies(self):
        spec = RunSpec("rpc", "STD", samples=2)
        sibling = spec.with_config("CLO")
        assert sibling.config == "CLO"
        assert sibling.stack == "rpc"
        assert sibling.samples == 2
        assert spec.config == "STD"

    def test_equality_ignores_layout_and_fault_plan(self):
        a = RunSpec("tcpip", "STD")
        b = RunSpec("tcpip", "STD", layout=lambda p: {})
        assert a == b


class TestSettings:
    def test_from_env_reads_all_three_variables(self):
        env = {
            ENGINE_ENV: "reference",
            VERIFY_IR_ENV: "1",
            CHAOS_ENV: "crash:STD:0",
        }
        settings = Settings.from_env(env)
        assert settings.engine == "reference"
        assert settings.verify_ir is True
        assert len(settings.chaos) == 1
        assert settings.chaos[0].kind == "crash"

    def test_explicit_arguments_beat_the_environment(self):
        env = {ENGINE_ENV: "reference", VERIFY_IR_ENV: "1"}
        settings = Settings.from_env(env, engine="fast", verify_ir=False)
        assert settings.engine == "fast"
        assert settings.verify_ir is False

    def test_defaults(self):
        settings = Settings.from_env({})
        assert settings == Settings()
        assert settings.engine == "fast"
        assert settings.verify_ir is False
        assert settings.chaos == ()

    def test_unknown_engine_fails_fast(self):
        with pytest.raises(ValueError, match="turbo"):
            Settings(engine="turbo")
        with pytest.raises(ValueError, match="warp"):
            Settings.from_env({ENGINE_ENV: "warp"})

    def test_with_engine_override(self):
        settings = Settings(engine="fast")
        assert settings.with_engine(None) is settings
        assert settings.with_engine("reference").engine == "reference"

    def test_settings_for_spec_engine_wins(self):
        spec = RunSpec("tcpip", "STD", engine="reference")
        assert settings_for(spec, Settings(engine="fast")).engine == "reference"
        plain = RunSpec("tcpip", "STD")
        assert settings_for(plain, Settings(engine="fast")).engine == "fast"

    def test_experiment_reads_environment_once_through_settings(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENGINE_ENV, "reference")
        exp = Experiment("tcpip", "STD")
        assert exp.settings.engine == "reference"
        assert exp.engine == "reference"
        # explicit settings suppress the environment entirely
        monkeypatch.setenv(ENGINE_ENV, "warp")
        exp = Experiment("tcpip", "STD", settings=Settings(engine="fast"))
        assert exp.engine == "fast"


class TestDeprecationShims:
    def test_resolve_engine_warns_but_works(self, monkeypatch):
        from repro.harness.experiment import resolve_engine

        monkeypatch.setenv(ENGINE_ENV, "reference")
        with pytest.warns(DeprecationWarning, match="Settings"):
            assert resolve_engine() == "reference"
        with pytest.warns(DeprecationWarning):
            assert resolve_engine("fast") == "fast"

    def test_verify_ir_enabled_warns_but_works(self, monkeypatch):
        from repro.harness.experiment import verify_ir_enabled

        monkeypatch.setenv(VERIFY_IR_ENV, "1")
        with pytest.warns(DeprecationWarning, match="Settings"):
            assert verify_ir_enabled() is True


class TestRun:
    @pytest.mark.parametrize("stack", ["tcpip", "rpc"])
    def test_bit_identical_to_legacy_experiment(self, stack):
        """The golden gate: the facade is the Experiment path, exactly."""
        spec = RunSpec(stack, "STD", samples=1)
        facade = run(spec)
        legacy = Experiment(stack, "STD").run(samples=1)
        assert facade.samples[0].steady.mcpi == legacy.samples[0].steady.mcpi
        assert (
            facade.samples[0].cold.memory.icache.misses
            == legacy.samples[0].cold.memory.icache.misses
        )
        assert facade.mean_rtt_us == legacy.mean_rtt_us

    def test_layout_override_changes_the_program(self):
        from repro.search import search_cell

        found = search_cell("tcpip", "CLO", budget=8, seed=0)
        default = run(RunSpec("tcpip", "CLO", samples=1))
        relaid = run(
            RunSpec("tcpip", "CLO", samples=1, layout=found.artifact)
        )
        assert (
            relaid.samples[0].steady.mcpi
            == found.artifact.score["steady_mcpi"]
        )
        assert (
            relaid.samples[0].steady.mcpi <= default.samples[0].steady.mcpi
        )

    def test_bad_layout_type_rejected(self):
        with pytest.raises(TypeError, match="layout"):
            run(RunSpec("tcpip", "STD", samples=1, layout=42))


class TestSweep:
    def test_plain_sweep_matches_run_all_configs(self):
        configs = ("STD", "OUT")
        specs = [RunSpec("tcpip", c, samples=1) for c in configs]
        facade = sweep(SweepSpec(runs=specs, parallel=False))
        legacy = run_all_configs(
            "tcpip", configs, samples=1, parallel=False
        )
        for spec, result in zip(specs, facade):
            assert (
                result.samples[0].steady.mcpi
                == legacy[spec.config].samples[0].steady.mcpi
            )

    def test_result_order_follows_spec_order(self):
        specs = [RunSpec("tcpip", c, samples=1) for c in ("OUT", "STD")]
        results = sweep(SweepSpec(runs=specs, parallel=False))
        assert results[0].config == "OUT"
        assert results[1].config == "STD"

    def test_heterogeneous_specs_fall_back_to_per_spec_runs(self):
        specs = [
            RunSpec("tcpip", "STD", samples=1, seed=7),
            RunSpec("tcpip", "OUT", samples=1, seed=7),
        ]
        results = sweep(specs)
        legacy = Experiment("tcpip", "STD", base_seed=7).run(samples=1)
        assert (
            results[0].samples[0].steady.mcpi
            == legacy.samples[0].steady.mcpi
        )

    def test_empty_sweep(self):
        assert sweep([]) == []


class TestSearchVerb:
    def test_search_returns_replayable_artifact(self):
        spec = SearchSpec(RunSpec("rpc", "STD", samples=1), budget=6, seed=0)
        result = api.search(spec)
        assert result.best_score <= result.baseline_score
        replay = run(
            RunSpec("rpc", "STD", samples=1, layout=result.artifact)
        )
        assert (
            replay.samples[0].steady.mcpi
            == result.artifact.score["steady_mcpi"]
        )

    def test_search_is_deterministic_through_the_facade(self):
        spec = SearchSpec(RunSpec("tcpip", "STD"), budget=4, seed=2)
        a = search(spec)
        b = search(spec)
        assert a.best_score == b.best_score
        assert a.artifact.placements == b.artifact.placements

    def test_search_spec_refuses_conflicting_kwargs(self):
        spec = SearchSpec(RunSpec("tcpip", "STD"), budget=4, seed=2)
        with pytest.raises(TypeError, match="SearchSpec already carries"):
            api.search(spec, budget=8)


class TestResultProtocol:
    """Every verb returns a Result: to_json() + render() + check()."""

    def test_run_result_conforms(self):
        result = run(RunSpec("tcpip", "STD", samples=1))
        assert isinstance(result, Result)
        assert result.check() == []
        assert "tcpip/STD" in result.render()
        assert result.to_json()["samples"] == 1

    def test_sweep_result_conforms_and_stays_a_list(self):
        results = sweep(SweepSpec(runs=(RunSpec("tcpip", "STD", samples=1),)))
        assert isinstance(results, Result)
        assert isinstance(results, list)  # legacy indexing callers survive
        assert results.check() == []
        assert len(results.to_json()) == 1

    def test_analyze_result_conforms(self):
        report = api.analyze(AnalyzeSpec(RunSpec("tcpip", "STD")))
        assert isinstance(report, Result)
        assert report.check() == [] and report.ok

    def test_search_result_conforms(self):
        result = search(SearchSpec(RunSpec("tcpip", "STD"), budget=4, seed=0))
        assert isinstance(result, Result)
        assert result.check() == []
        assert result.render() == result.summary()

    def test_profile_result_conforms(self):
        cell = api.profile(ProfileSpec("tcpip", "STD"))
        assert isinstance(cell, Result)
        assert cell.check() == []
        assert "steady state" in cell.render()

    def test_faults_result_conforms(self):
        study = api.faults(
            FaultsSpec("tcpip", configs=("STD",), rate=0.25, samples=1)
        )
        assert isinstance(study, Result)
        assert study.check() == []
        assert study.to_json()["rows"]["STD"]

    def test_datalayout_result_conforms(self):
        study = api.datalayout(
            DatalayoutSpec(
                techniques=("coalesce",), stacks=("tcpip",), configs=("STD",)
            )
        )
        assert isinstance(study, Result)
        assert study.check() == []
        assert study.cell("tcpip", "STD", "coalesce").bounds_sound

    def test_traffic_result_conforms(self):
        from repro.api import TrafficStudySpec
        from repro.traffic import TrafficSpec

        small = TrafficSpec(packets=2_000, flows=50, warmup_packets=200)
        study = api.traffic(
            TrafficStudySpec(traffic=small, schemes=("one-entry",))
        )
        assert isinstance(study, Result)
        assert study.check() == []
        assert study.point("one-entry", "zipf", 50)


class TestKwargShims:
    """The pre-spec keyword forms still work but warn."""

    def test_sweep_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="SweepSpec"):
            results = sweep(
                [RunSpec("tcpip", "STD", samples=1)], parallel=False
            )
        assert results[0].config == "STD"

    def test_search_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="SearchSpec"):
            result = search(RunSpec("tcpip", "STD"), budget=4, seed=2)
        via_spec = search(SearchSpec(RunSpec("tcpip", "STD"), budget=4, seed=2))
        assert result.artifact.placements == via_spec.artifact.placements

    def test_search_bare_runspec_with_defaults_stays_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            search(RunSpec("tcpip", "STD"))

    def test_analyze_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="AnalyzeSpec"):
            report = api.analyze(
                RunSpec("tcpip", "STD"), check_conflicts=False
            )
        assert report.ok

    def test_traffic_kwargs_warn(self):
        from repro.traffic import TrafficSpec

        small = TrafficSpec(packets=2_000, flows=50, warmup_packets=200)
        with pytest.warns(DeprecationWarning, match="TrafficStudySpec"):
            study = api.traffic(small, schemes=["one-entry"])
        assert study.point("one-entry", "zipf", 50)
