"""Tests for the ``repro.api`` facade: specs, settings, and the three verbs."""

import dataclasses

import pytest

from repro import api
from repro.api import RunSpec, Settings, run, search, settings_for, sweep
from repro.api.settings import CHAOS_ENV, ENGINE_ENV, VERIFY_IR_ENV
from repro.harness.experiment import Experiment, run_all_configs


class TestRunSpec:
    def test_is_frozen(self):
        spec = RunSpec("tcpip", "STD")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.config = "CLO"

    def test_rejects_unknown_stack(self):
        with pytest.raises(ValueError, match="stack"):
            RunSpec("quic", "STD")

    def test_rejects_unknown_config(self):
        with pytest.raises(ValueError, match="configuration"):
            RunSpec("tcpip", "MAX")

    def test_with_config_copies(self):
        spec = RunSpec("rpc", "STD", samples=2)
        sibling = spec.with_config("CLO")
        assert sibling.config == "CLO"
        assert sibling.stack == "rpc"
        assert sibling.samples == 2
        assert spec.config == "STD"

    def test_equality_ignores_layout_and_fault_plan(self):
        a = RunSpec("tcpip", "STD")
        b = RunSpec("tcpip", "STD", layout=lambda p: {})
        assert a == b


class TestSettings:
    def test_from_env_reads_all_three_variables(self):
        env = {
            ENGINE_ENV: "reference",
            VERIFY_IR_ENV: "1",
            CHAOS_ENV: "crash:STD:0",
        }
        settings = Settings.from_env(env)
        assert settings.engine == "reference"
        assert settings.verify_ir is True
        assert len(settings.chaos) == 1
        assert settings.chaos[0].kind == "crash"

    def test_explicit_arguments_beat_the_environment(self):
        env = {ENGINE_ENV: "reference", VERIFY_IR_ENV: "1"}
        settings = Settings.from_env(env, engine="fast", verify_ir=False)
        assert settings.engine == "fast"
        assert settings.verify_ir is False

    def test_defaults(self):
        settings = Settings.from_env({})
        assert settings == Settings()
        assert settings.engine == "fast"
        assert settings.verify_ir is False
        assert settings.chaos == ()

    def test_unknown_engine_fails_fast(self):
        with pytest.raises(ValueError, match="turbo"):
            Settings(engine="turbo")
        with pytest.raises(ValueError, match="warp"):
            Settings.from_env({ENGINE_ENV: "warp"})

    def test_with_engine_override(self):
        settings = Settings(engine="fast")
        assert settings.with_engine(None) is settings
        assert settings.with_engine("reference").engine == "reference"

    def test_settings_for_spec_engine_wins(self):
        spec = RunSpec("tcpip", "STD", engine="reference")
        assert settings_for(spec, Settings(engine="fast")).engine == "reference"
        plain = RunSpec("tcpip", "STD")
        assert settings_for(plain, Settings(engine="fast")).engine == "fast"

    def test_experiment_reads_environment_once_through_settings(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENGINE_ENV, "reference")
        exp = Experiment("tcpip", "STD")
        assert exp.settings.engine == "reference"
        assert exp.engine == "reference"
        # explicit settings suppress the environment entirely
        monkeypatch.setenv(ENGINE_ENV, "warp")
        exp = Experiment("tcpip", "STD", settings=Settings(engine="fast"))
        assert exp.engine == "fast"


class TestDeprecationShims:
    def test_resolve_engine_warns_but_works(self, monkeypatch):
        from repro.harness.experiment import resolve_engine

        monkeypatch.setenv(ENGINE_ENV, "reference")
        with pytest.warns(DeprecationWarning, match="Settings"):
            assert resolve_engine() == "reference"
        with pytest.warns(DeprecationWarning):
            assert resolve_engine("fast") == "fast"

    def test_verify_ir_enabled_warns_but_works(self, monkeypatch):
        from repro.harness.experiment import verify_ir_enabled

        monkeypatch.setenv(VERIFY_IR_ENV, "1")
        with pytest.warns(DeprecationWarning, match="Settings"):
            assert verify_ir_enabled() is True


class TestRun:
    @pytest.mark.parametrize("stack", ["tcpip", "rpc"])
    def test_bit_identical_to_legacy_experiment(self, stack):
        """The golden gate: the facade is the Experiment path, exactly."""
        spec = RunSpec(stack, "STD", samples=1)
        facade = run(spec)
        legacy = Experiment(stack, "STD").run(samples=1)
        assert facade.samples[0].steady.mcpi == legacy.samples[0].steady.mcpi
        assert (
            facade.samples[0].cold.memory.icache.misses
            == legacy.samples[0].cold.memory.icache.misses
        )
        assert facade.mean_rtt_us == legacy.mean_rtt_us

    def test_layout_override_changes_the_program(self):
        from repro.search import search_cell

        found = search_cell("tcpip", "CLO", budget=8, seed=0)
        default = run(RunSpec("tcpip", "CLO", samples=1))
        relaid = run(
            RunSpec("tcpip", "CLO", samples=1, layout=found.artifact)
        )
        assert (
            relaid.samples[0].steady.mcpi
            == found.artifact.score["steady_mcpi"]
        )
        assert (
            relaid.samples[0].steady.mcpi <= default.samples[0].steady.mcpi
        )

    def test_bad_layout_type_rejected(self):
        with pytest.raises(TypeError, match="layout"):
            run(RunSpec("tcpip", "STD", samples=1, layout=42))


class TestSweep:
    def test_plain_sweep_matches_run_all_configs(self):
        configs = ("STD", "OUT")
        specs = [RunSpec("tcpip", c, samples=1) for c in configs]
        facade = sweep(specs, parallel=False)
        legacy = run_all_configs(
            "tcpip", configs, samples=1, parallel=False
        )
        for spec, result in zip(specs, facade):
            assert (
                result.samples[0].steady.mcpi
                == legacy[spec.config].samples[0].steady.mcpi
            )

    def test_result_order_follows_spec_order(self):
        specs = [RunSpec("tcpip", c, samples=1) for c in ("OUT", "STD")]
        results = sweep(specs, parallel=False)
        assert results[0].config == "OUT"
        assert results[1].config == "STD"

    def test_heterogeneous_specs_fall_back_to_per_spec_runs(self):
        specs = [
            RunSpec("tcpip", "STD", samples=1, seed=7),
            RunSpec("tcpip", "OUT", samples=1, seed=7),
        ]
        results = sweep(specs)
        legacy = Experiment("tcpip", "STD", base_seed=7).run(samples=1)
        assert (
            results[0].samples[0].steady.mcpi
            == legacy.samples[0].steady.mcpi
        )

    def test_empty_sweep(self):
        assert sweep([]) == []


class TestSearchVerb:
    def test_search_returns_replayable_artifact(self):
        spec = RunSpec("rpc", "STD", samples=1)
        result = api.search(spec, budget=6, seed=0)
        assert result.best_score <= result.baseline_score
        replay = run(
            RunSpec("rpc", "STD", samples=1, layout=result.artifact)
        )
        assert (
            replay.samples[0].steady.mcpi
            == result.artifact.score["steady_mcpi"]
        )

    def test_search_is_deterministic_through_the_facade(self):
        spec = RunSpec("tcpip", "STD")
        a = search(spec, budget=4, seed=2)
        b = search(spec, budget=4, seed=2)
        assert a.best_score == b.best_score
        assert a.artifact.placements == b.artifact.placements
