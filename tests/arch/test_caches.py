"""Unit tests for the cache building blocks."""

import pytest

from repro.arch.caches import CacheStats, DirectMappedCache, StreamBuffer, WriteBuffer


class TestDirectMappedCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DirectMappedCache(0)
        with pytest.raises(ValueError):
            DirectMappedCache(100, block_size=32)  # not a multiple
        with pytest.raises(ValueError):
            DirectMappedCache(96, block_size=24)  # not a power of two

    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(1024, 32)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(31)  # same block
        assert not cache.access(32)  # next block
        assert cache.stats.accesses == 4
        assert cache.stats.misses == 2
        assert cache.stats.replacement_misses == 0

    def test_replacement_miss_accounting(self):
        cache = DirectMappedCache(1024, 32)  # 32 blocks
        cache.access(0)
        cache.access(1024)  # aliases block 0
        assert cache.stats.replacement_misses == 0  # first touch is cold
        cache.access(0)  # evicted earlier: replacement miss
        assert cache.stats.replacement_misses == 1
        cache.access(1024)
        assert cache.stats.replacement_misses == 2

    def test_different_indexes_do_not_conflict(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(0)
        cache.access(32)
        assert cache.access(0)
        assert cache.access(32)

    def test_write_no_allocate_policy(self):
        cache = DirectMappedCache(1024, 32, write_allocate=False)
        assert not cache.access(0, write=True)
        assert not cache.access(0)  # still not resident
        assert cache.access(0)

    def test_write_allocate_policy(self):
        cache = DirectMappedCache(1024, 32, write_allocate=True)
        cache.access(0, write=True)
        assert cache.access(0)

    def test_install_does_not_count_access(self):
        cache = DirectMappedCache(1024, 32)
        cache.install(64)
        assert cache.stats.accesses == 0
        assert cache.access(64)

    def test_contains_probe_is_stat_free(self):
        cache = DirectMappedCache(1024, 32)
        assert not cache.contains(0)
        assert cache.stats.accesses == 0

    def test_invalidate_all_keeps_history(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(0)
        cache.invalidate_all()
        assert not cache.access(0)
        # the block had been resident before: this is a replacement miss
        assert cache.stats.replacement_misses == 1

    def test_reset_clears_everything(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(0)
        assert cache.stats.replacement_misses == 0

    def test_stats_delta(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(0)
        before = cache.stats.snapshot()
        cache.access(0)
        cache.access(32)
        delta = cache.stats.delta(before)
        assert delta.accesses == 2
        assert delta.misses == 1


class TestWriteBuffer:
    def test_write_merging(self):
        wb = WriteBuffer(depth=4, block_size=32)
        assert not wb.write(0)  # new block: "miss"
        assert wb.write(8)  # same block: merged
        assert wb.write(24)
        assert wb.stats.accesses == 3
        assert wb.stats.misses == 1

    def test_fifo_eviction_when_full(self):
        wb = WriteBuffer(depth=2, block_size=32)
        wb.write(0)
        wb.write(32)
        assert wb.evictions == 0
        wb.write(64)  # evicts block 0
        assert wb.evictions == 1
        assert not wb.contains(0)
        assert wb.contains(64)

    def test_drain(self):
        wb = WriteBuffer(depth=4, block_size=32)
        wb.write(0)
        wb.write(32)
        assert wb.drain() == [0, 1]
        assert not wb.contains(0)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(depth=0)


class TestStreamBuffer:
    def test_probe_consumes(self):
        sb = StreamBuffer(32)
        sb.prefetch(2)
        assert sb.probe(64) is not None  # block 2
        assert sb.probe(64) is None  # consumed

    def test_miss_on_wrong_block(self):
        sb = StreamBuffer(32)
        sb.prefetch(2)
        assert sb.probe(128) is None

    def test_probe_reports_prefetch_bcache_outcome(self):
        sb = StreamBuffer(32)
        sb.prefetch(2, bcache_miss=True)
        assert sb.probe(64) is True
        sb.prefetch(3, bcache_miss=False)
        assert sb.probe(96) is False

    def test_counters(self):
        sb = StreamBuffer(32)
        sb.prefetch(1)
        sb.probe(32)
        assert sb.hits == 1
        assert sb.prefetches == 1


class TestCacheStats:
    def test_derived_quantities(self):
        stats = CacheStats(accesses=10, misses=4, replacement_misses=1)
        assert stats.hits == 6
        assert stats.cold_misses == 3
        assert stats.miss_rate == pytest.approx(0.4)

    def test_empty_miss_rate(self):
        assert CacheStats().miss_rate == 0.0
