"""Unit tests for the dual-issue CPU timing model."""

import pytest

from repro.arch.cpu import CpuConfig, CpuModel, _can_pair
from repro.arch.isa import Op, TraceEntry


def alu(pc=0):
    return TraceEntry(pc=pc, op=Op.ALU)


def load(pc=0, addr=0x1000):
    return TraceEntry(pc=pc, op=Op.LOAD, daddr=addr)


def store(pc=0, addr=0x1000):
    return TraceEntry(pc=pc, op=Op.STORE, daddr=addr, dwrite=True)


def branch(pc=0, taken=False):
    return TraceEntry(pc=pc, op=Op.BR, taken=taken)


class TestPairingRules:
    def test_dependent_alu_chain_does_not_pair(self):
        # back-to-back integer operates are assumed dependent (address
        # arithmetic, flag tests) and issue one per cycle
        assert not _can_pair(Op.ALU, Op.ALU)

    def test_memory_pairs_with_alu(self):
        assert _can_pair(Op.LOAD, Op.ALU)
        assert _can_pair(Op.ALU, Op.STORE)
        assert _can_pair(Op.LDA, Op.LOAD)

    def test_two_memory_ops_do_not_pair(self):
        assert not _can_pair(Op.LOAD, Op.STORE)
        assert not _can_pair(Op.LOAD, Op.LOAD)

    def test_branches_never_pair(self):
        assert not _can_pair(Op.ALU, Op.BR)
        assert not _can_pair(Op.BR, Op.ALU)

    def test_multiply_issues_alone(self):
        assert not _can_pair(Op.MUL, Op.ALU)
        assert not _can_pair(Op.ALU, Op.MUL)


class TestCpuModel:
    def test_perfectly_paired_trace_has_half_cpi(self):
        cpu = CpuModel()
        stats = cpu.run([load(addr=8 * i) if i % 2 == 0 else alu()
                         for i in range(100)])
        assert stats.instructions == 100
        assert stats.cycles == 50
        assert stats.icpi == pytest.approx(0.5)

    def test_unpairable_trace_has_cpi_one(self):
        cpu = CpuModel()
        stats = cpu.run([load(addr=8 * i) for i in range(20)])
        assert stats.cycles == 20
        assert stats.icpi == pytest.approx(1.0)

    def test_alu_chain_has_cpi_one(self):
        stats = CpuModel().run([alu()] * 30)
        assert stats.icpi == pytest.approx(1.0)

    def test_taken_branch_penalty(self):
        cpu = CpuModel(CpuConfig(taken_branch_penalty=3))
        base = cpu.run([alu(), branch(taken=False)]).cycles
        taken = cpu.run([alu(), branch(taken=True)]).cycles
        assert taken - base == 3

    def test_taken_branch_counter(self):
        cpu = CpuModel()
        stats = cpu.run([branch(taken=True), branch(taken=False), branch(taken=True)])
        assert stats.taken_branches == 2

    def test_multiply_latency(self):
        cfg = CpuConfig(multiply_extra_cycles=7)
        cpu = CpuModel(cfg)
        with_mul = cpu.run([TraceEntry(pc=0, op=Op.MUL)])
        assert with_mul.cycles == 1 + 7
        assert with_mul.multiplies == 1

    def test_odd_length_trace(self):
        cpu = CpuModel()
        stats = cpu.run([load(addr=0), alu(), load(addr=8)])
        # the first two pair; the leftover load takes its own cycle
        assert stats.cycles == 2

    def test_empty_trace(self):
        stats = CpuModel().run([])
        assert stats.instructions == 0
        assert stats.cycles == 0
        assert stats.icpi == 0.0

    def test_cycles_to_us_uses_clock(self):
        cpu = CpuModel(CpuConfig(clock_mhz=175.0))
        assert cpu.cycles_to_us(175) == pytest.approx(1.0)

    def test_mixed_trace_ordering_matters(self):
        """Alternating mem/alu pairs better than mem-clustered code."""
        cpu = CpuModel()
        alternating = cpu.run([load(addr=8 * i) if i % 2 == 0 else alu()
                               for i in range(40)])
        clustered = cpu.run([load(addr=8 * i) for i in range(20)] + [alu()] * 20)
        assert alternating.cycles < clustered.cycles

    def test_icpi_between_half_and_one_for_mixes(self):
        cpu = CpuModel()
        trace = []
        for i in range(60):
            trace.append(load(addr=8 * i) if i % 3 == 0 else alu())
        stats = cpu.run(trace)
        assert 0.5 <= stats.icpi <= 1.0
