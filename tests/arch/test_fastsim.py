"""The fast kernel against the reference oracle.

``FastMachine`` / ``simulate_cold_and_steady`` must be *bit-identical* to
``MachineSimulator`` — same SimResult, same MemoryStats counters, same
CpuStats — for every build configuration of both stacks.  These are the
differential tests that hold the fast engine to that contract.
"""

import pytest

from repro.arch.cpu import CpuModel
from repro.arch.fastsim import (
    FastMachine,
    cpu_pass,
    data_blocks,
    fetch_runs,
    simulate_cold_and_steady,
)
from repro.arch.packed import IS_MEMORY
from repro.arch.simcache import clear_caches, simulate_cold_and_steady_cached
from repro.arch.simulator import MachineSimulator
from repro.core.walker import Walker
from repro.harness.configs import CONFIG_NAMES, build_configured_program_cached
from repro.harness.experiment import Experiment

CELLS = [(stack, config) for stack in ("tcpip", "rpc")
         for config in CONFIG_NAMES]


@pytest.fixture(scope="module")
def walks():
    """One real walked roundtrip per (stack, config) cell."""
    out = {}
    for stack, config in CELLS:
        exp = Experiment(stack, config)
        events, data_env = exp.capture_roundtrip(42)
        build = build_configured_program_cached(stack, config)
        out[(stack, config)] = Walker(build.program, data_env).walk(events)
    return out


@pytest.mark.parametrize("stack,config", CELLS)
def test_cold_run_bit_identical(walks, stack, config):
    walk = walks[(stack, config)]
    ref = MachineSimulator().run(walk.trace)
    fast = FastMachine().run(walk.packed)
    assert fast == ref
    assert fast.memory == ref.memory
    assert fast.cpu == ref.cpu


@pytest.mark.parametrize("stack,config", CELLS)
def test_steady_state_bit_identical(walks, stack, config):
    walk = walks[(stack, config)]
    ref = MachineSimulator().run_steady_state(walk.trace)
    fast = FastMachine().run_steady_state(walk.packed)
    assert fast == ref


@pytest.mark.parametrize("stack", ["tcpip", "rpc"])
def test_simulate_cold_and_steady_matches_two_reference_machines(walks, stack):
    walk = walks[(stack, "ALL")]
    cold, steady = simulate_cold_and_steady(walk.packed)
    assert cold == MachineSimulator().run(walk.trace)
    assert steady == MachineSimulator().run_steady_state(walk.trace)


def test_convergence_shortcut_is_exact_for_long_warmups(walks):
    # the fixed-point detector may skip warm passes; the result must still
    # equal the brute-force reference at any requested warm-up depth
    walk = walks[("tcpip", "CLO")]
    _, steady = simulate_cold_and_steady(walk.packed, warmup_rounds=6)
    assert steady == MachineSimulator().run_steady_state(
        walk.trace, warmup_rounds=6)


def test_warm_up_evolves_state_like_reference(walks):
    walk = walks[("rpc", "STD")]
    ref = MachineSimulator()
    ref.warm_up(walk.trace)
    fast = FastMachine()
    fast.warm_up(walk.packed)
    assert fast.run(walk.packed) == ref.run(walk.trace)


def test_cpu_pass_matches_cpu_model(walks):
    walk = walks[("tcpip", "STD")]
    assert cpu_pass(walk.packed) == CpuModel().run(walk.trace)


def test_accepts_entry_sequences(walks):
    # the MachineSimulator-compatible API packs plain entry lists itself
    entries = walks[("tcpip", "OUT")].trace
    assert FastMachine().run(list(entries)) == MachineSimulator().run(entries)


def test_fetch_runs_and_data_blocks_cover_the_trace(walks):
    packed = walks[("tcpip", "ALL")].packed
    block_size, i_n = 32, 256
    run_blks, run_idxs, dcounts = fetch_runs(packed, block_size, i_n)
    assert len(run_blks) == len(run_idxs) == len(dcounts)
    # runs partition the fetch stream: block boundaries exactly where the
    # pc column changes blocks
    flat = []
    for blk, cnt in zip(run_blks, dcounts):
        flat.append(blk)
    expect = []
    prev = None
    for pc in packed.pcs:
        blk = pc // block_size
        if blk != prev:
            expect.append(blk)
            prev = blk
    assert flat == expect
    assert [b % i_n for b in run_blks] == list(run_idxs)
    # per-run memory counts sum to the dense data column's length
    dblks = data_blocks(packed, block_size)
    assert sum(dcounts) == len(dblks)
    assert sum(dcounts) == sum(1 for c in packed.ops if IS_MEMORY[c])


def test_fetch_runs_cached_per_trace(walks):
    packed = walks[("rpc", "ALL")].packed
    first = fetch_runs(packed, 32, 256)
    assert fetch_runs(packed, 32, 256) is first
    assert data_blocks(packed, 32) is data_blocks(packed, 32)


def test_result_cache_returns_equal_fresh_copies(walks):
    clear_caches()
    packed = walks[("tcpip", "PIN")].packed
    cold1, steady1 = simulate_cold_and_steady_cached(packed)
    cold2, steady2 = simulate_cold_and_steady_cached(packed)
    assert (cold1, steady1) == (cold2, steady2)
    # cached lookups hand out copies, never the stored object
    assert cold1.memory is not cold2.memory
    assert cold1 == MachineSimulator().run(walks[("tcpip", "PIN")].trace)
    clear_caches()
