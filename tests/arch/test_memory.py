"""Unit tests for the memory hierarchy model."""

import pytest

from repro.arch.isa import Op, TraceEntry
from repro.arch.memory import MemoryHierarchy


def fetch(pc):
    return TraceEntry(pc=pc, op=Op.ALU)


def load(pc, addr):
    return TraceEntry(pc=pc, op=Op.LOAD, daddr=addr)


def store(pc, addr):
    return TraceEntry(pc=pc, op=Op.STORE, daddr=addr, dwrite=True)


@pytest.fixture
def mem():
    return MemoryHierarchy()


class TestInstructionFetch:
    def test_icache_hit_costs_nothing(self, mem):
        mem.step(fetch(0x1000))
        assert mem.step(fetch(0x1004)) == 0

    def test_cold_miss_costs_bcache_latency(self, mem):
        stall = mem.step(fetch(0x1000))
        assert stall == mem.config.main_memory_cycles  # b-cache cold too

    def test_warm_bcache_miss_costs_hit_latency(self, mem):
        mem.step(fetch(0x1000))
        # force i-cache eviction by touching the aliasing address
        mem.step(fetch(0x1000 + mem.config.icache_size))
        stall = mem.step(fetch(0x1000))
        assert stall == mem.config.bcache_hit_cycles

    def test_sequential_prefetch_generates_bcache_access(self, mem):
        before = mem.stats.bcache.accesses
        mem.step(fetch(0x1000))
        # the miss fetches the block and prefetches the successor
        assert mem.stats.bcache.accesses == before + 2

    def test_stream_buffer_hit_cost(self, mem):
        # warm the b-cache first so the prefetch hits it
        mem.step(fetch(0x1000))
        mem.step(fetch(0x1020))
        mem.step(fetch(0x1000 + mem.config.icache_size))  # evict both
        mem.step(fetch(0x1020 + mem.config.icache_size))
        mem.step(fetch(0x1000))  # miss; prefetches (warm) 0x1020
        stall = mem.step(fetch(0x1020))
        assert stall == mem.config.stream_hit_cycles
        assert mem.stats.stream_buffer_hits >= 1

    def test_stream_hit_on_cold_prefetch_pays_memory_latency(self, mem):
        mem.step(fetch(0x1000))  # prefetch of 0x1020 misses the b-cache
        stall = mem.step(fetch(0x1020))
        assert stall == (
            mem.config.stream_hit_cycles
            + mem.config.main_memory_cycles
            - mem.config.bcache_hit_cycles
        )

    def test_icache_accesses_equal_trace_length(self, mem):
        for i in range(17):
            mem.step(fetch(0x2000 + 4 * i))
        assert mem.stats.icache.accesses == 17


class TestDataAccess:
    def test_read_miss_then_hit(self, mem):
        first = mem.step(load(0x1000, 0x70000))
        second = mem.step(load(0x1004, 0x70008))
        assert first > second  # same d-cache block after allocation
        assert second == 0

    def test_write_through_no_allocate(self, mem):
        mem.step(store(0x1000, 0x70000))
        # a later read of the same address still misses the d-cache and is
        # satisfied from the write buffer at the store-drain cost
        stall = mem.step(load(0x1004, 0x70000))
        assert stall == mem.config.write_forward_cycles

    def test_write_merging(self, mem):
        mem.step(store(0x1000, 0x70000))
        before = mem.stats.bcache.accesses
        mem.step(store(0x1004, 0x70008))  # same block: merged
        assert mem.stats.bcache.accesses == before

    def test_combined_dcache_stats_count_writes(self, mem):
        mem.step(load(0x1000, 0x70000))
        mem.step(store(0x1004, 0x71000))
        stats = mem.stats.dcache
        assert stats.accesses == 2
        assert stats.misses == 2  # cold read miss + unmerged write

    def test_write_buffer_overflow_stalls(self, mem):
        stalls = []
        for i in range(8):
            stalls.append(mem.step(store(0x1000, 0x70000 + 64 * i)))
        assert any(s >= mem.config.write_buffer_full_cycles for s in stalls[4:])


class TestSteadyState:
    def test_repeating_trace_warms_up(self, mem):
        trace = [fetch(0x3000 + 4 * i) for i in range(64)]
        mem.run(trace)
        before = mem.stats.snapshot()
        mem.run(trace)
        delta = mem.stats.delta(before)
        assert delta.icache.misses == 0
        assert delta.stall_cycles == 0

    def test_aliasing_functions_thrash(self):
        mem = MemoryHierarchy()
        icache = mem.config.icache_size
        f1 = [fetch(0x10000 + 4 * i) for i in range(64)]
        f2 = [fetch(0x10000 + icache + 4 * i) for i in range(64)]
        mem.run(f1 + f2)  # cold pass
        before = mem.stats.snapshot()
        mem.run(f1 + f2)  # steady state: mutual eviction
        delta = mem.stats.delta(before)
        assert delta.icache.replacement_misses > 0
        assert delta.stall_cycles > 0

    def test_mcpi_definition(self, mem):
        trace = [fetch(0x4000 + 4 * i) for i in range(16)]
        stats = mem.run(trace)
        assert stats.mcpi == pytest.approx(stats.stall_cycles / 16)

    def test_reset(self, mem):
        mem.step(fetch(0x1000))
        mem.reset()
        assert mem.stats.instructions == 0
        assert mem.stats.icache.accesses == 0
