"""PackedTrace: round-tripping, fingerprints, validation, pickling."""

import pickle

import pytest

from repro.arch.isa import Op, TraceEntry
from repro.arch.packed import (
    FLAG_DWRITE,
    FLAG_TAKEN,
    IS_BRANCH,
    IS_MEMORY,
    OP_CODES,
    OPS_BY_CODE,
    PackedTrace,
)
from array import array


def sample_entries():
    return [
        TraceEntry(pc=0x1000, op=Op.ALU),
        TraceEntry(pc=0x1004, op=Op.LOAD, daddr=0x8000),
        TraceEntry(pc=0x1008, op=Op.STORE, daddr=0x8040, dwrite=True),
        TraceEntry(pc=0x100C, op=Op.BR, taken=True),
        TraceEntry(pc=0x2000, op=Op.LDA),
        TraceEntry(pc=0x2004, op=Op.RET, taken=True),
    ]


def test_predicate_tables_match_op_attributes():
    for code, op in enumerate(OPS_BY_CODE):
        assert IS_MEMORY[code] == op.is_memory
        assert IS_BRANCH[code] == op.is_branch
        assert OP_CODES[op] == code


def test_round_trip_preserves_entries():
    entries = sample_entries()
    packed = PackedTrace.from_entries(entries)
    assert len(packed) == len(entries)
    assert packed.entries() == entries
    assert list(packed) == entries
    assert [packed[i] for i in range(len(packed))] == entries


def test_columns_encode_flags_and_addresses():
    packed = PackedTrace.from_entries(sample_entries())
    assert packed.daddrs[0] == -1          # non-memory: sentinel
    assert packed.daddrs[1] == 0x8000
    assert packed.flags[2] & FLAG_DWRITE
    assert packed.flags[3] & FLAG_TAKEN
    assert not packed.flags[0]


def test_append_validates_daddr_op_agreement():
    packed = PackedTrace()
    with pytest.raises(ValueError):
        packed.append(0x1000, OP_CODES[Op.LOAD])          # memory, no daddr
    with pytest.raises(ValueError):
        packed.append(0x1000, OP_CODES[Op.ALU], daddr=8)  # non-memory + daddr
    assert len(packed) == 0


def test_constructor_rejects_ragged_columns():
    with pytest.raises(ValueError):
        PackedTrace(pcs=array("q", [1, 2]), daddrs=array("q", [-1]),
                    ops=bytearray(2), flags=bytearray(2))


def test_extend_straight_matches_appends():
    a = PackedTrace()
    b = PackedTrace()
    pcs = array("q", [0x1000, 0x1004, 0x1008])
    ops = bytes([OP_CODES[Op.ALU], OP_CODES[Op.LDA], OP_CODES[Op.ALU]])
    a.extend_straight(pcs, ops)
    for pc, code in zip(pcs, ops):
        b.append(pc, code)
    assert a.entries() == b.entries()
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_is_content_addressed():
    a = PackedTrace.from_entries(sample_entries())
    b = PackedTrace.from_entries(sample_entries())
    assert a.fingerprint() == b.fingerprint()
    assert a.cpu_key() == b.cpu_key()
    b.append(0x3000, OP_CODES[Op.ALU])
    assert a.fingerprint() != b.fingerprint()


def test_cpu_key_ignores_addresses():
    entries = sample_entries()
    a = PackedTrace.from_entries(entries)
    shifted = [
        TraceEntry(pc=e.pc + 0x100,
                   op=e.op,
                   daddr=None if e.daddr is None else e.daddr + 0x40,
                   dwrite=e.dwrite, taken=e.taken)
        for e in entries
    ]
    b = PackedTrace.from_entries(shifted)
    assert a.fingerprint() != b.fingerprint()
    assert a.cpu_key() == b.cpu_key()      # ops/flags columns are equal


def test_mutation_invalidates_cached_hashes():
    packed = PackedTrace.from_entries(sample_entries())
    before = packed.fingerprint()
    packed.append(0x4000, OP_CODES[Op.ALU])
    assert packed.fingerprint() != before


def test_pickle_round_trip():
    packed = PackedTrace.from_entries(sample_entries())
    clone = pickle.loads(pickle.dumps(packed))
    assert clone.entries() == packed.entries()
    assert clone.fingerprint() == packed.fingerprint()
