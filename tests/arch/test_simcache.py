"""Bounds, copy semantics and equivalence of the simulation result caches.

``repro.arch.simcache`` memoizes (trace fingerprint, config) -> results.
These tests pin down the parts the fast path silently relies on: the FIFO
bounds actually bound, lookups hand out fresh copies, hit/miss counters
track reality, and cached results are bit-identical to uncached runs.
"""

import pytest

from repro.arch import simcache
from repro.arch.fastsim import simulate_cold_and_steady
from repro.arch.isa import Op, TraceEntry
from repro.arch.packed import PackedTrace
from repro.arch.simcache import (
    cached_cpu_stats,
    clear_caches,
    simulate_cold_and_steady_cached,
)
from repro.arch.simulator import MachineSimulator
from repro.core.walker import Walker
from repro.harness.configs import build_configured_program_cached
from repro.harness.experiment import Experiment


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _trace(base: int, n: int = 64) -> PackedTrace:
    """A small synthetic trace whose fingerprint depends on ``base``."""
    entries = [TraceEntry(pc=base + 4 * i, op=Op.ALU, daddr=None) for i in range(n)]
    return PackedTrace.from_entries(entries)


@pytest.fixture(scope="module")
def walk():
    exp = Experiment("tcpip", "STD")
    events, data_env = exp.capture_roundtrip(42)
    build = build_configured_program_cached("tcpip", "STD")
    return Walker(build.program, data_env).walk(events)


class TestBounds:
    def test_result_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(simcache, "_MAX_RESULTS", 4)
        for i in range(10):
            simulate_cold_and_steady_cached(_trace(0x10000 * (i + 1)))
        assert len(simcache._results) <= 4

    def test_cpu_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(simcache, "_MAX_CPU", 3)
        for i in range(8):
            # vary the op column so each trace has a distinct cpu key
            entries = [
                TraceEntry(pc=4 * j, op=Op.ALU, daddr=None) for j in range(16 + i)
            ]
            cached_cpu_stats(PackedTrace.from_entries(entries))
        assert len(simcache._cpu_results) <= 3

    def test_fifo_evicts_oldest_first(self, monkeypatch):
        monkeypatch.setattr(simcache, "_MAX_RESULTS", 2)
        traces = [_trace(0x10000 * (i + 1)) for i in range(3)]
        for t in traces:
            simulate_cold_and_steady_cached(t)
        before = simcache.hits
        # the newest two entries are still cached (each lookup also hits
        # the cpu-side cache: these traces share one op column) ...
        simulate_cold_and_steady_cached(traces[2])
        simulate_cold_and_steady_cached(traces[1])
        assert simcache.hits == before + 4
        # ... while the oldest was evicted and misses again
        misses_before = simcache.misses
        simulate_cold_and_steady_cached(traces[0])
        assert simcache.misses == misses_before + 1


class TestCopySemantics:
    def test_mutating_a_result_does_not_poison_the_cache(self):
        t = _trace(0x4000)
        cold1, steady1 = simulate_cold_and_steady_cached(t)
        cold1.memory.stall_cycles += 999
        steady1.cpu.cycles += 999
        cold2, steady2 = simulate_cold_and_steady_cached(t)
        assert cold2.memory.stall_cycles == cold1.memory.stall_cycles - 999
        assert steady2.cpu.cycles == steady1.cpu.cycles - 999

    def test_cpu_stats_are_fresh_copies(self):
        t = _trace(0x4000)
        s1 = cached_cpu_stats(t)
        s2 = cached_cpu_stats(t)
        assert s1 == s2
        assert s1 is not s2


class TestCounters:
    def test_hits_and_misses_track_lookups(self):
        t = _trace(0x8000)
        assert (simcache.hits, simcache.misses) == (0, 0)
        simulate_cold_and_steady_cached(t)
        # one memory-side miss plus one cpu-side miss
        assert simcache.misses == 2
        assert simcache.hits == 0
        simulate_cold_and_steady_cached(t)
        assert simcache.hits == 2

    def test_clear_caches_resets_everything(self):
        simulate_cold_and_steady_cached(_trace(0xC000))
        clear_caches()
        assert not simcache._results
        assert not simcache._cpu_results
        assert (simcache.hits, simcache.misses) == (0, 0)


class TestIntegrity:
    def test_corrupted_result_entry_is_detected_and_recomputed(self):
        t = _trace(0x14000)
        cold, steady = simulate_cold_and_steady_cached(t)
        # flip a stored stat behind the cache's back (entries are
        # ((cold, steady) pair, checksum) tuples)
        ((key, ((stored_cold, _), _checksum)),) = list(simcache._results.items())
        stored_cold.stall_cycles += 1
        assert simcache.corruptions == 0
        cold2, steady2 = simulate_cold_and_steady_cached(t)
        assert simcache.corruptions == 1
        assert cold2 == cold
        assert steady2 == steady
        # the recomputed entry replaced the corrupt one and verifies again
        cold3, _ = simulate_cold_and_steady_cached(t)
        assert simcache.corruptions == 1
        assert cold3 == cold

    def test_corrupted_cpu_entry_is_detected_and_recomputed(self):
        t = _trace(0x18000)
        stats = cached_cpu_stats(t)
        ((key, (stored, _checksum)),) = list(simcache._cpu_results.items())
        stored.cycles += 7
        stats2 = cached_cpu_stats(t)
        assert simcache.corruptions == 1
        assert stats2 == stats

    def test_clear_caches_resets_corruption_counter(self):
        t = _trace(0x1C000)
        cached_cpu_stats(t)
        ((_, (stored, _)),) = list(simcache._cpu_results.items())
        stored.instructions += 1
        cached_cpu_stats(t)
        assert simcache.corruptions == 1
        clear_caches()
        assert simcache.corruptions == 0


class TestEquivalence:
    def test_cached_equals_uncached_fast_engine(self, walk):
        cold_c, steady_c = simulate_cold_and_steady_cached(walk.packed)
        cold_u, steady_u = simulate_cold_and_steady(walk.packed)
        assert cold_c == cold_u
        assert steady_c == steady_u
        # and a warm lookup returns the same values again
        cold_w, steady_w = simulate_cold_and_steady_cached(walk.packed)
        assert (cold_w, steady_w) == (cold_u, steady_u)

    def test_cached_equals_reference_engine(self, walk):
        cold, steady = simulate_cold_and_steady_cached(walk.packed)
        assert cold == MachineSimulator().run(walk.trace)
        assert steady == MachineSimulator().run_steady_state(walk.trace)

    def test_cached_and_uncached_experiment_runs_agree(self):
        """A full experiment cell produces bit-identical samples whether
        its simulations hit the cache or miss it."""
        exp = Experiment("tcpip", "OUT", engine="fast")
        build = build_configured_program_cached("tcpip", "OUT", exp.opts)
        miss = exp.run_sample(build, seed=7)  # cold caches: all misses
        assert simcache.misses > 0
        hit = exp.run_sample(build, seed=7)  # same walk: served from cache
        assert simcache.hits > 0
        assert miss.steady == hit.steady
        assert miss.cold == hit.cold
        assert miss.roundtrip_us == hit.roundtrip_us
