"""Unit tests for the top-level machine simulator."""

import pytest

from repro.arch.cpu import CpuConfig
from repro.arch.isa import Op, TraceEntry
from repro.arch.memory import MemoryConfig
from repro.arch.simulator import (
    AlphaConfig,
    MachineSimulator,
    simulate_cold,
    simulate_steady,
)


def straight_code(n=100, base=0x100000):
    return [TraceEntry(pc=base + 4 * i, op=Op.ALU) for i in range(n)]


def code_with_data(n=50):
    trace = []
    for i in range(n):
        if i % 3 == 0:
            trace.append(TraceEntry(pc=0x100000 + 4 * i, op=Op.LOAD,
                                    daddr=0x600000 + 16 * i))
        else:
            trace.append(TraceEntry(pc=0x100000 + 4 * i, op=Op.ALU))
    return trace


class TestSimResult:
    def test_cpi_decomposition(self):
        result = simulate_cold(code_with_data())
        assert result.cpi == pytest.approx(result.icpi + result.mcpi)
        assert result.cycles == (result.cpu.cycles
                                 + result.memory.stall_cycles)

    def test_time_follows_clock(self):
        result = simulate_cold(straight_code())
        assert result.time_us() == pytest.approx(result.cycles / 175.0)
        assert result.time_us(350.0) == pytest.approx(result.cycles / 350.0)

    def test_empty_trace(self):
        result = simulate_cold([])
        assert result.cycles == 0
        assert result.cpi == 0.0

    def test_instruction_count_matches_trace(self):
        trace = straight_code(321)
        assert simulate_cold(trace).instructions == 321


class TestSteadyState:
    def test_steady_is_warmer_than_cold(self):
        trace = straight_code(400)
        cold = simulate_cold(trace)
        steady = simulate_steady(trace)
        assert steady.memory.stall_cycles < cold.memory.stall_cycles
        assert steady.memory.icache.misses == 0  # 1.6KB fits the cache

    def test_warmup_rounds_respected(self):
        trace = straight_code(400)
        sim = MachineSimulator()
        result = sim.run_steady_state(trace, warmup_rounds=0)
        cold = simulate_cold(trace)
        assert result.memory.stall_cycles == cold.memory.stall_cycles

    def test_measured_run_isolated_from_warmup_stats(self):
        trace = straight_code(200)
        steady = simulate_steady(trace)
        # the reported access count covers only the measured repetition
        assert steady.memory.icache.accesses == 200


class TestConfiguration:
    def test_custom_clock(self):
        cfg = AlphaConfig(cpu=CpuConfig(clock_mhz=266.0))
        sim = MachineSimulator(cfg)
        result = sim.run(straight_code())
        assert result.time_us(266.0) < result.time_us(175.0)

    def test_custom_cache_size_changes_behaviour(self):
        # a trace spanning 16KB thrashes an 8KB cache but fits 32KB
        trace = straight_code(4096) * 2
        small = MachineSimulator(
            AlphaConfig(memory=MemoryConfig(icache_size=8 * 1024))
        ).run_steady_state(trace)
        big = MachineSimulator(
            AlphaConfig(memory=MemoryConfig(icache_size=32 * 1024))
        ).run_steady_state(trace)
        assert big.memory.icache.misses < small.memory.icache.misses

    def test_reset(self):
        sim = MachineSimulator()
        sim.run(straight_code())
        sim.reset()
        assert sim.memory.stats.instructions == 0


class TestDeterminism:
    def test_same_trace_same_result(self):
        trace = code_with_data(200)
        r1 = simulate_cold(list(trace))
        r2 = simulate_cold(list(trace))
        assert r1.cycles == r2.cycles
        assert r1.memory.icache.misses == r2.memory.icache.misses
