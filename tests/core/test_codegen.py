"""Unit tests for materialization (codegen)."""

import pytest

from repro.arch.isa import Op
from repro.core.codegen import (
    call_site_size,
    epilogue_size,
    materialize,
    prologue_size,
)
from repro.core.ir import FunctionBuilder, GP_RELOAD_INSTRUCTIONS


def simple_fn(name="f", *, saves=2, leaf=False, specialized=False):
    fb = FunctionBuilder(name, saves=saves, leaf=leaf)
    fb.block("a").alu(3)
    fb.ret()
    fn = fb.build()
    fn.specialized = specialized
    return fn


class TestPrologueEpilogue:
    def test_prologue_contents(self):
        mfn = materialize(simple_fn(saves=2))
        ops = [i.op for i in mfn.blocks[0].body]
        # GP reload (2 LDA) + SP adjust (LDA) + RA store + 2 saves
        assert ops[:3] == [Op.LDA, Op.LDA, Op.LDA]
        assert ops[3:6] == [Op.STORE, Op.STORE, Op.STORE]

    def test_specialized_prologue_skips_gp_reload(self):
        plain = materialize(simple_fn()).size
        special = materialize(simple_fn(specialized=True)).size
        assert plain - special == GP_RELOAD_INSTRUCTIONS

    def test_leaf_function_smaller(self):
        assert prologue_size(simple_fn(leaf=True)) < prologue_size(simple_fn())
        assert epilogue_size(simple_fn(leaf=True)) < epilogue_size(simple_fn())

    def test_epilogue_ends_in_ret(self):
        mfn = materialize(simple_fn())
        epilogue = mfn.blocks[-1].term.epilogue
        assert epilogue[-1].op is Op.RET
        restores = [i for i in epilogue if i.op is Op.LOAD]
        assert len(restores) == 3  # RA + 2 saved registers


class TestBranchCanonicalization:
    def _branchy(self, order):
        fb = FunctionBuilder("f")
        fb.block("top").alu(1)
        fb.branch("cond", "yes", "no")
        fb.block("yes").alu(1)
        fb.jump("join")
        fb.block("no").alu(1)
        fb.block("join").alu(1)
        fb.ret()
        fn = fb.build()
        if order:
            fn.blocks.sort(key=lambda b: order.index(b.label))
        return fn

    def test_adjacent_target_falls_through(self):
        mfn = materialize(self._branchy(None))
        top = mfn.block("top")
        assert top.term.br is not None
        assert top.term.jmp is None
        assert top.term.fallthrough_target == "yes"

    def test_neither_adjacent_needs_branch_and_jump(self):
        fn = self._branchy(["top", "join", "yes", "no"])
        mfn = materialize(fn)
        top = mfn.block("top")
        assert top.term.br is not None
        assert top.term.jmp is not None
        assert top.term.fallthrough_target is None

    def test_adjacent_jump_elided(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.jump("b")
        fb.block("b").alu(1)
        fb.ret()
        mfn = materialize(fb.build())
        assert mfn.block("a").term.jmp is None

    def test_non_adjacent_jump_emitted(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.jump("c")
        fb.block("b").alu(1)
        fb.ret()
        fb.block("c").alu(1)
        fb.jump("b")
        mfn = materialize(fb.build())
        assert mfn.block("a").term.jmp is not None


class TestCallMaterialization:
    def _caller(self):
        fb = FunctionBuilder("caller")
        fb.block("a").alu(1)
        fb.call("callee", "b")
        fb.block("b").alu(1)
        fb.ret()
        return fb.build()

    def test_far_call_is_got_load_plus_jsr(self):
        mfn = materialize(self._caller())
        term = mfn.block("a").term
        assert term.got_load is not None
        assert term.got_load.op is Op.LOAD
        assert term.call.op is Op.JSR

    def test_near_call_is_single_bsr(self):
        mfn = materialize(self._caller(), near=lambda c, e: True)
        term = mfn.block("a").term
        assert term.got_load is None
        assert term.call.op is Op.BSR

    def test_near_call_is_smaller(self):
        far = materialize(self._caller()).size
        near = materialize(self._caller(), near=lambda c, e: True).size
        assert far - near == call_site_size(False) - call_site_size(True)

    def test_dynamic_call_loads_dispatch_slot(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.call_dynamic("site", "b")
        fb.block("b").alu(1)
        fb.ret()
        mfn = materialize(fb.build())
        term = mfn.block("a").term
        assert term.got_load.dref.region == "demux"
        assert term.call.op is Op.JSR


class TestOffsets:
    def test_offsets_are_contiguous(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(5)
        fb.block("b").alu(3)
        fb.ret()
        mfn = materialize(fb.build())
        seen = []
        for blk in mfn.blocks:
            seen.extend(i.offset for i in blk.body)
            for slot in (blk.term.br, blk.term.jmp, blk.term.got_load, blk.term.call):
                if slot:
                    seen.append(slot.offset)
            seen.extend(i.offset for i in blk.term.epilogue)
        assert seen == sorted(seen)
        assert seen == list(range(len(seen)))

    def test_size_counts_everything(self):
        fn = simple_fn(saves=1)
        mfn = materialize(fn)
        # prologue (2 GP + 1 SP + RA + 1 save) + 3 alu + epilogue (2 loads + lda + ret)
        assert mfn.size == 5 + 3 + 4

    def test_next_label(self):
        fb = FunctionBuilder("f")
        fb.block("a")
        fb.block("b")
        mfn = materialize(fb.build())
        assert mfn.next_label("a") == "b"
        assert mfn.next_label("b") is None

    def test_unterminated_block_is_an_error(self):
        from repro.core.ir import BasicBlock, Function

        fn = Function(name="broken", blocks=[BasicBlock("a")])
        with pytest.raises(ValueError):
            materialize(fn)
