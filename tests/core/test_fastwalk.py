"""Template-accelerated walks against the full walker."""

import pytest

from repro.core.fastwalk import FastWalker, event_signature
from repro.core.walker import EnterEvent, ExitEvent, MarkEvent, Walker
from repro.harness.configs import build_configured_program_cached
from repro.harness.experiment import Experiment

SEEDS = (42, 59, 76)


def _columns(walk):
    p = walk.packed
    return (list(p.pcs), list(p.daddrs), bytes(p.ops), bytes(p.flags))


@pytest.mark.parametrize("stack,config",
                         [("tcpip", "STD"), ("tcpip", "ALL"), ("rpc", "CLO")])
def test_fast_walker_matches_walker_across_seeds(stack, config):
    exp = Experiment(stack, config)
    build = build_configured_program_cached(stack, config)
    for seed in SEEDS:
        events, data_env = exp.capture_roundtrip(seed)
        reference = Walker(build.program, data_env).walk(events)
        # independent clone: walks consume list-valued conds in place
        events2, _ = exp.capture_roundtrip(seed)
        templated = FastWalker(build.program, data_env).walk(events2)
        assert _columns(templated) == _columns(reference)
        assert templated.marks == reference.marks


def test_second_walk_uses_the_template(monkeypatch):
    exp = Experiment("tcpip", "OUT")
    build = build_configured_program_cached("tcpip", "OUT")
    events, data_env = exp.capture_roundtrip(42)
    first = FastWalker(build.program, data_env).walk(events)
    assert build.program.__dict__.get("_walk_templates")

    # a template hit must not re-run the full walker
    def boom(self, events, **kwargs):                    # pragma: no cover
        raise AssertionError("template miss: full walk re-ran")
    monkeypatch.setattr(Walker, "walk", boom)

    events2, _ = exp.capture_roundtrip(59)
    rebound = FastWalker(build.program, data_env).walk(events2)
    assert bytes(rebound.packed.ops) == bytes(first.packed.ops)
    assert list(rebound.packed.pcs) == list(first.packed.pcs)


def test_rebind_shares_code_derived_caches():
    exp = Experiment("rpc", "ALL")
    build = build_configured_program_cached("rpc", "ALL")
    events, data_env = exp.capture_roundtrip(42)
    first = FastWalker(build.program, data_env).walk(events)
    events2, _ = exp.capture_roundtrip(59)
    second = FastWalker(build.program, data_env).walk(events2)
    # fetch-run structure depends only on pcs/ops -> one shared cache dict
    assert second.packed._shared is first.packed._shared


def test_event_signature_tracks_control_flow_not_data():
    events_a = [EnterEvent("f", {"c": True}, {"heap": 0x1000}),
                MarkEvent("m"), ExitEvent("f")]
    events_b = [EnterEvent("f", {"c": True}, {"heap": 0x9000}),
                MarkEvent("m"), ExitEvent("f")]
    events_c = [EnterEvent("f", {"c": False}, {"heap": 0x1000}),
                MarkEvent("m"), ExitEvent("f")]
    # data-region *values* rebind; only keys and outcomes steer the walker
    assert event_signature(events_a) == event_signature(events_b)
    assert event_signature(events_a) != event_signature(events_c)
