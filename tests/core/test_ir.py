"""Unit tests for the compiler IR and builders."""

import pytest

from repro.arch.isa import Op
from repro.core.ir import (
    BasicBlock,
    CallStatic,
    CondBranch,
    DataRef,
    Fallthrough,
    Function,
    FunctionBuilder,
    Instruction,
    Jump,
    Return,
    terminator_targets,
)


class TestInstruction:
    def test_memory_op_requires_dref(self):
        with pytest.raises(ValueError):
            Instruction(Op.LOAD)

    def test_non_memory_op_rejects_dref(self):
        with pytest.raises(ValueError):
            Instruction(Op.ALU, DataRef("x"))

    def test_valid_memory_instruction(self):
        ins = Instruction(Op.STORE, DataRef("msg", 8))
        assert ins.dref.offset == 8


class TestCondBranch:
    def test_assumed_prefers_default(self):
        br = CondBranch("c", "a", "b", predict=True, default=False)
        assert br.assumed() is False

    def test_assumed_falls_back_to_predict(self):
        br = CondBranch("c", "a", "b", predict=False)
        assert br.assumed() is False

    def test_assumed_defaults_true(self):
        assert CondBranch("c", "a", "b").assumed() is True

    def test_likely_and_unlikely_targets(self):
        br = CondBranch("c", "yes", "no", predict=False)
        assert br.likely_target() == "no"
        assert br.unlikely_target() == "yes"


class TestFunctionBuilder:
    def test_fallthrough_resolution(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.block("b").alu(1)
        fn = fb.build()
        assert isinstance(fn.block("a").terminator, Fallthrough)
        assert fn.block("a").terminator.target == "b"
        assert isinstance(fn.block("b").terminator, Return)

    def test_duplicate_labels_rejected(self):
        fb = FunctionBuilder("f")
        fb.block("a")
        fb.block("a")
        with pytest.raises(ValueError):
            fb.build()

    def test_unknown_target_rejected(self):
        fb = FunctionBuilder("f")
        fb.block("a")
        fb.jump("nowhere")
        with pytest.raises(ValueError):
            fb.build()

    def test_auto_labels_are_unique(self):
        fb = FunctionBuilder("f")
        b1 = fb.block()
        b2 = fb.block()
        assert b1.label != b2.label

    def test_origin_stamped(self):
        fb = FunctionBuilder("myfn")
        fb.block("a")
        fn = fb.build()
        assert fn.block("a").origin == "myfn"

    def test_mix_interleaves_memory_and_alu(self):
        fb = FunctionBuilder("f")
        fb.block("a").mix(alu=2, loads=2, region="s")
        fn = fb.build()
        ops = [i.op for i in fn.block("a").instructions]
        assert ops == [Op.LOAD, Op.ALU, Op.LOAD, Op.ALU]

    def test_entry_is_first_block(self):
        fb = FunctionBuilder("f")
        fb.block("first")
        fb.block("second")
        assert fb.build().entry == "first"


class TestFunction:
    def _fn(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(2)
        fb.call("g", "b")
        fb.block("b").alu(1)
        fb.ret()
        return fb.build()

    def test_callees(self):
        assert self._fn().callees() == ["g"]

    def test_block_lookup_error(self):
        with pytest.raises(KeyError):
            self._fn().block("zzz")

    def test_clone_renames_function_not_labels(self):
        fn = self._fn()
        copy = fn.clone("f2")
        assert copy.name == "f2"
        assert copy.block("a").origin == "f"  # authoring scope preserved
        # mutating the clone leaves the original alone
        copy.block("a").instructions.append(Instruction(Op.ALU))
        assert len(fn.block("a").instructions) == 2

    def test_empty_function_entry_raises(self):
        with pytest.raises(ValueError):
            Function(name="empty").entry


class TestBasicBlockClone:
    def test_rename_prefixes_labels_and_targets(self):
        blk = BasicBlock("x", terminator=Jump("y"))
        copy = blk.clone(rename="p$")
        assert copy.label == "p$x"
        assert copy.terminator.target == "p$y"

    def test_clone_copies_instructions_shallowly(self):
        blk = BasicBlock("x", instructions=[Instruction(Op.ALU)],
                         terminator=Return())
        copy = blk.clone()
        copy.instructions.append(Instruction(Op.ALU))
        assert len(blk.instructions) == 1


class TestTerminatorTargets:
    def test_all_kinds(self):
        assert terminator_targets(Jump("a")) == ("a",)
        assert terminator_targets(Fallthrough("a")) == ("a",)
        assert terminator_targets(CondBranch("c", "a", "b")) == ("a", "b")
        assert terminator_targets(CallStatic("g", "a")) == ("a",)
        assert terminator_targets(Return()) == ()
