"""Label-collision guards: splicing transforms must fail loudly.

``Function.block`` resolves the first matching label, so a duplicate label
silently shadows a block.  These regressions pin the guards that keep the
renaming transforms (clone, inline, path-inline) from manufacturing that
state.
"""

import pytest

from repro.core.inline import inline_call
from repro.core.ir import (
    BasicBlock,
    Function,
    FunctionBuilder,
    Return,
    ensure_unique_labels,
)
from repro.core.pathinline import path_inline
from repro.core.program import Program


class TestEnsureUniqueLabels:
    def test_unique_passes(self):
        blocks = [
            BasicBlock(label="a", terminator=Return()),
            BasicBlock(label="b", terminator=Return()),
        ]
        ensure_unique_labels(blocks, context="f")

    def test_duplicate_rejected_with_context(self):
        blocks = [
            BasicBlock(label="a", terminator=Return()),
            BasicBlock(label="a", terminator=Return()),
        ]
        with pytest.raises(ValueError, match="f:.*'a'"):
            ensure_unique_labels(blocks, context="f")


class TestCloneGuard:
    def test_clone_of_shadowed_blocks_rejected(self):
        fn = Function(name="f", blocks=[
            BasicBlock(label="a", terminator=Return()),
            BasicBlock(label="a", terminator=Return()),
        ])
        with pytest.raises(ValueError, match="duplicate block labels"):
            fn.clone("f2")


class TestInlineCollisionGuard:
    def _program(self, *, poison: bool):
        p = Program()
        fb = FunctionBuilder("leaf", saves=0, leaf=True)
        fb.block("x").alu(2)
        fb.ret()
        p.add(fb.build())
        fb = FunctionBuilder("caller", saves=1)
        fb.block("site").alu(1)
        fb.call("leaf", "done")
        fb.block("done").alu(1)
        fb.ret()
        if poison:
            # the exact label the splice's rename prefix would mint
            fb.block("site$leaf$x").alu(1)
            fb.ret()
        p.add(fb.build())
        return p

    def test_clean_inline_succeeds(self):
        p = self._program(poison=False)
        inline_call(p, "caller", "site")
        assert p.function("caller").block("site$leaf$x") is not None

    def test_colliding_prefix_rejected(self):
        p = self._program(poison=True)
        with pytest.raises(ValueError, match="collide"):
            inline_call(p, "caller", "site")


class TestPathInlineGuards:
    def test_duplicate_members_rejected(self):
        p = Program()
        for name in ("bottom", "top"):
            fb = FunctionBuilder(name, saves=1)
            fb.block("work").alu(2)
            if name == "bottom":
                fb.call_dynamic("up", "done")
                fb.block("done").alu(1)
            fb.ret()
            p.add(fb.build())
        with pytest.raises(ValueError, match="unique"):
            path_inline(p, "merged", ["bottom", "bottom", "top"])
