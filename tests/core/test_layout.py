"""Unit tests for the layout strategies."""

import pytest

from repro.core.ir import FunctionBuilder
from repro.core.layout import (
    BCACHE,
    ICACHE,
    bipartite_layout,
    icache_sets_of,
    linear_layout,
    link_order_layout,
    micro_positioning_layout,
    pessimal_layout,
)
from repro.core.program import Program


def make_fn(name, alu=40, library=False):
    fb = FunctionBuilder(name, saves=1, library=library)
    fb.block("a").alu(alu)
    fb.ret()
    return fb.build()


def make_program(n_path=4, n_lib=2, path_alu=60, lib_alu=20):
    p = Program()
    for i in range(n_path):
        p.add(make_fn(f"path{i}", path_alu))
    for i in range(n_lib):
        p.add(make_fn(f"lib{i}", lib_alu, library=True))
    return p


class TestLinkOrder:
    def test_sequential_and_disjoint(self):
        p = make_program()
        p.layout(link_order_layout())
        p.check_no_overlap()
        ranges = p.occupied_ranges()
        for (s1, e1, _), (s2, _, _) in zip(ranges, ranges[1:]):
            assert s2 >= e1

    def test_explicit_order_respected(self):
        p = make_program(2, 0)
        p.layout(link_order_layout(["path1", "path0"]))
        assert p.address_of("path1") < p.address_of("path0")

    def test_unlisted_functions_placed_after(self):
        p = make_program(3, 0)
        p.layout(link_order_layout(["path2"]))
        assert p.address_of("path2") < p.address_of("path0")

    def test_missing_layout_raises(self):
        p = make_program()
        with pytest.raises(KeyError):
            p.address_of("path0")


class TestPessimal:
    def test_hot_functions_share_icache_index(self):
        p = make_program(6, 0)
        hot = [f"path{i}" for i in range(6)]
        p.layout(pessimal_layout(hot))
        p.check_no_overlap()
        indexes = {p.address_of(n) % ICACHE for n in hot}
        assert indexes == {0}

    def test_alias_pairs_share_bcache_index(self):
        p = make_program(6, 0)
        hot = [f"path{i}" for i in range(6)]
        p.layout(pessimal_layout(hot, bcache_alias_pairs=1))
        a, b = p.address_of("path0"), p.address_of("path1")
        assert a % BCACHE == b % BCACHE
        assert a != b

    def test_non_alias_pairs_have_distinct_bcache_index(self):
        p = make_program(6, 0)
        hot = [f"path{i}" for i in range(6)]
        p.layout(pessimal_layout(hot, bcache_alias_pairs=1))
        a, b = p.address_of("path4"), p.address_of("path5")
        assert a % ICACHE == b % ICACHE
        assert a % BCACHE != b % BCACHE


class TestBipartite:
    def test_library_packed_at_base(self):
        p = make_program()
        p.layout(bipartite_layout(
            [f"path{i}" for i in range(4)], ["lib0", "lib1"]))
        p.check_no_overlap()
        assert p.address_of("lib0") == p.text_base

    def test_path_functions_avoid_library_indexes(self):
        p = make_program(n_path=30, n_lib=2, path_alu=120)
        path = [f"path{i}" for i in range(30)]
        p.layout(bipartite_layout(path, ["lib0", "lib1"]))
        p.check_no_overlap()
        lib_span = 0
        for lib in ("lib0", "lib1"):
            end = p.address_of(lib) + p.size_of(lib) - p.text_base
            lib_span = max(lib_span, end)
        for name in path:
            base_index = (p.address_of(name) - p.text_base) % ICACHE
            end_index = base_index + p.size_of(name)
            assert base_index >= lib_span, name
            assert end_index <= ICACHE, name

    def test_path_functions_in_order(self):
        p = make_program()
        path = [f"path{i}" for i in range(4)]
        p.layout(bipartite_layout(path, ["lib0", "lib1"]))
        addrs = [p.address_of(n) for n in path]
        assert addrs == sorted(addrs)

    def test_oversized_function_placed_anyway(self):
        p = Program()
        p.add(make_fn("lib0", 30, library=True))
        p.add(make_fn("huge", 4000))  # ~16 KB, larger than the partition
        p.layout(bipartite_layout(["huge"], ["lib0"]))
        p.check_no_overlap()
        assert p.address_of("huge") > p.address_of("lib0")

    def test_oversized_library_rejected(self):
        p = Program()
        p.add(make_fn("lib0", 3000, library=True))  # ~12 KB > i-cache
        with pytest.raises(ValueError):
            p.layout(bipartite_layout([], ["lib0"]))


class TestLinear:
    def test_is_invocation_order_packing(self):
        p = make_program(3, 0)
        p.layout(linear_layout(["path2", "path0", "path1"]))
        assert (
            p.address_of("path2") < p.address_of("path0") < p.address_of("path1")
        )


class TestMicroPositioning:
    def _alternating_trace(self, p, names, rounds=3):
        trace = []
        for _ in range(rounds):
            for name in names:
                blocks = (p.size_of(name) + 31) // 32
                trace.extend((name, i) for i in range(blocks))
        return trace

    def test_places_all_functions_disjointly(self):
        p = make_program(4, 0)
        names = [f"path{i}" for i in range(4)]
        trace = self._alternating_trace(p, names)
        p.layout(micro_positioning_layout(trace))
        p.check_no_overlap()

    def test_avoids_conflicts_that_pessimal_creates(self):
        """Two alternating functions that would thrash if aliased should be
        given non-overlapping index ranges."""
        p = make_program(2, 0, path_alu=100)
        names = ["path0", "path1"]
        trace = self._alternating_trace(p, names, rounds=4)
        p.layout(micro_positioning_layout(trace))
        i0 = (p.address_of("path0") - p.text_base) % ICACHE
        i1 = (p.address_of("path1") - p.text_base) % ICACHE
        s0, s1 = p.size_of("path0"), p.size_of("path1")
        assert i0 + s0 <= i1 or i1 + s1 <= i0

    def test_functions_not_in_trace_still_placed(self):
        p = make_program(3, 1)
        trace = self._alternating_trace(p, ["path0"])
        p.layout(micro_positioning_layout(trace))
        p.check_no_overlap()
        assert p.address_of("lib0") > 0


class TestIcacheSetsOf:
    def test_sets_match_extent(self):
        p = make_program(2, 0)
        p.layout(link_order_layout())
        for name in ("path0", "path1"):
            sets = icache_sets_of(p, name)
            start = p.address_of(name)
            end = start + p.size_of(name)
            expect = {blk % (ICACHE // 32)
                      for blk in range(start // 32, (end - 1) // 32 + 1)}
            assert sets == expect

    def test_adjacent_functions_share_at_most_one_set(self):
        p = make_program(2, 0)
        p.layout(link_order_layout())
        shared = icache_sets_of(p, "path0") & icache_sets_of(p, "path1")
        # block-aligned sequential packing: only a shared boundary block
        assert len(shared) <= 1

    def test_aliased_functions_share_sets(self):
        p = make_program(2, 0, path_alu=100)
        # place path1 exactly one i-cache stride after path0
        base = p.text_base
        p.layout(lambda prog: {"path0": base, "path1": base + ICACHE})
        sets0 = icache_sets_of(p, "path0")
        sets1 = icache_sets_of(p, "path1")
        assert sets0 & sets1

    def test_giant_function_occupies_every_set(self):
        p = Program()
        p.add(make_fn("big", alu=5000))
        p.layout(link_order_layout())
        assert len(icache_sets_of(p, "big")) == ICACHE // 32

    def test_zero_size_hot_extent_occupies_no_sets(self):
        """A function whose every block is outlined has an empty hot
        footprint -- not a phantom set derived from its base address."""
        fb = FunctionBuilder("coldonly", saves=1)
        fb.block("a", unlikely=True).alu(4)
        fb.ret()
        p = Program()
        p.add(fb.build())
        p.layout(link_order_layout())
        assert p.hot_size_of("coldonly") == 0
        assert icache_sets_of(p, "coldonly", hot_only=True) == set()
        assert icache_sets_of(p, "coldonly")  # the full extent is real
