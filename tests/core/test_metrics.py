"""Unit tests for the analysis metrics (Table 9 / Figure 2 machinery)."""

import pytest

from repro.arch.isa import Op, TraceEntry
from repro.core.ir import FunctionBuilder
from repro.core.layout import link_order_layout
from repro.core.metrics import (
    block_utilization,
    conflict_pairs,
    icache_footprint,
    mainline_and_outlined_size,
    static_path_size,
    trace_block_touches,
)
from repro.core.outline import outline_program
from repro.core.program import Program
from repro.core.walker import EnterEvent, ExitEvent, Walker


def fetch(pc):
    return TraceEntry(pc=pc, op=Op.ALU)


class TestBlockUtilization:
    def test_full_block_is_fully_used(self):
        trace = [fetch(4 * i) for i in range(8)]
        util = block_utilization(trace)
        assert util.fetched_blocks == 1
        assert util.unused_slots == 0
        assert util.unused_fraction == 0.0

    def test_half_used_block(self):
        trace = [fetch(4 * i) for i in range(4)]
        util = block_utilization(trace)
        assert util.unused_slots == 4
        assert util.unused_fraction == pytest.approx(0.5)

    def test_repeated_execution_counts_once(self):
        trace = [fetch(0), fetch(0), fetch(4)]
        util = block_utilization(trace)
        assert util.used_slots == 2

    def test_empty_trace(self):
        util = block_utilization([])
        assert util.unused_fraction == 0.0
        assert util.unused_per_block == 0.0

    def test_unused_per_block(self):
        trace = [fetch(0), fetch(32)]  # two blocks, one slot each
        util = block_utilization(trace)
        assert util.unused_per_block == pytest.approx(7.0)


def outlined_program():
    p = Program()
    fb = FunctionBuilder("f", saves=1)
    fb.block("a").alu(4)
    fb.branch("bad", "err", "ok", predict=False)
    fb.block("err").alu(10)
    fb.jump("ok")
    fb.block("ok").alu(4)
    fb.ret()
    p.add(fb.build())
    return p


class TestStaticSizes:
    def test_static_path_size_sums_functions(self):
        p = outlined_program()
        size = static_path_size(p, ["f"])
        assert size == p.materialized("f").size

    def test_mainline_outlined_split(self):
        p = outlined_program()
        before_main, before_out = mainline_and_outlined_size(p, ["f"])
        assert before_out == 0
        outline_program(p)
        after_main, after_out = mainline_and_outlined_size(p, ["f"])
        assert after_out >= 10
        assert after_main < before_main

    def test_split_total_conserved_modulo_branch_shape(self):
        p = outlined_program()
        total_before = sum(mainline_and_outlined_size(p, ["f"]))
        outline_program(p)
        total_after = sum(mainline_and_outlined_size(p, ["f"]))
        # outlining may add/remove a jump instruction, nothing more
        assert abs(total_after - total_before) <= 2


class TestFootprint:
    def _program(self):
        p = Program()
        for name in ("a", "b"):
            fb = FunctionBuilder(name, saves=1)
            fb.block("m").alu(30)
            fb.ret()
            p.add(fb.build())
        return p

    def test_footprint_rows(self):
        p = self._program()
        p.layout(link_order_layout())
        rows = icache_footprint(p, ["a", "b"])
        assert rows[0].name == "a"
        assert rows[0].blocks >= 1
        assert 0 <= rows[0].first_index < 256

    def test_conflict_pairs_detects_aliasing(self):
        p = self._program()
        from repro.core.layout import pessimal_layout

        p.layout(pessimal_layout(["a", "b"], bcache_alias_pairs=0))
        rows = icache_footprint(p, ["a", "b"])
        pairs = conflict_pairs(rows)
        assert pairs and pairs[0][:2] == ("a", "b")

    def test_disjoint_layout_has_at_most_boundary_sharing(self):
        p = self._program()
        p.layout(link_order_layout())
        rows = icache_footprint(p, ["a", "b"])
        # packed functions may share the single block straddling their
        # boundary, but no more than that
        assert all(overlap <= 1 for _, _, overlap in conflict_pairs(rows))


class TestTraceBlockTouches:
    def test_touches_name_functions_and_collapse_duplicates(self):
        p = outlined_program()
        p.layout(link_order_layout())
        res = Walker(p).walk(
            [EnterEvent("f", conds={"bad": False}), ExitEvent("f")]
        )
        touches = trace_block_touches(res.trace, p)
        assert touches
        assert all(name == "f" for name, _ in touches)
        # consecutive duplicates collapsed
        for t1, t2 in zip(touches, touches[1:]):
            assert t1 != t2

    def test_unknown_pcs_skipped(self):
        p = outlined_program()
        p.layout(link_order_layout())
        stray = [fetch(0xDEAD0000)]
        assert trace_block_touches(stray, p) == []
