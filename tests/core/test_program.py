"""Unit tests for the Program (linker) layer."""

import pytest

from repro.core.ir import FunctionBuilder
from repro.core.layout import link_order_layout
from repro.core.program import FUNCTION_ALIGN, Program


def make_fn(name, alu=10, *, library=False):
    fb = FunctionBuilder(name, saves=1, library=library)
    fb.block("a").alu(alu)
    fb.ret()
    return fb.build()


class TestRegistry:
    def test_add_and_lookup(self):
        p = Program()
        fn = p.add(make_fn("f"))
        assert p.function("f") is fn
        assert "f" in p
        assert "g" not in p

    def test_duplicate_rejected(self):
        p = Program()
        p.add(make_fn("f"))
        with pytest.raises(ValueError):
            p.add(make_fn("f"))

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            Program().function("ghost")

    def test_library_flag_collected(self):
        p = Program()
        p.add(make_fn("lib", library=True))
        p.add(make_fn("path"))
        assert p.library_names == {"lib"}

    def test_remove(self):
        p = Program()
        p.add(make_fn("f"))
        p.remove("f")
        assert "f" not in p

    def test_replace_invalidates_cache(self):
        p = Program()
        p.add(make_fn("f", alu=10))
        size1 = p.size_of("f")
        p.replace(make_fn("f", alu=50))
        assert p.size_of("f") > size1


class TestGotSlots:
    def test_slots_are_stable_and_distinct(self):
        p = Program()
        a = p.got_offset("x")
        b = p.got_offset("y")
        assert a != b
        assert p.got_offset("x") == a

    def test_slots_are_quadword_spaced(self):
        p = Program()
        offsets = [p.got_offset(f"s{i}") for i in range(5)]
        assert offsets == [0, 8, 16, 24, 32]


class TestLayoutBookkeeping:
    def _program(self):
        p = Program()
        p.add(make_fn("a", 20))
        p.add(make_fn("b", 30))
        p.layout(link_order_layout())
        return p

    def test_extent(self):
        p = self._program()
        low, high = p.extent()
        assert low == p.text_base
        assert high == max(
            p.address_of(n) + p.size_of(n) for n in ("a", "b")
        )

    def test_occupied_ranges_sorted(self):
        p = self._program()
        ranges = p.occupied_ranges()
        starts = [s for s, _, _ in ranges]
        assert starts == sorted(starts)

    def test_incomplete_layout_rejected(self):
        p = Program()
        p.add(make_fn("a"))
        p.add(make_fn("b"))
        with pytest.raises(ValueError):
            p.layout(lambda prog: {"a": prog.text_base})

    def test_misaligned_layout_rejected(self):
        p = Program()
        p.add(make_fn("a"))
        with pytest.raises(ValueError):
            p.layout(lambda prog: {"a": prog.text_base + FUNCTION_ALIGN - 1})

    def test_extent_without_layout_rejected(self):
        p = Program()
        p.add(make_fn("a"))
        with pytest.raises(ValueError):
            p.extent()

    def test_overlap_detection(self):
        p = Program()
        p.add(make_fn("a", 100))
        p.add(make_fn("b", 100))
        p.layout(lambda prog: {"a": prog.text_base, "b": prog.text_base + 4})
        with pytest.raises(ValueError):
            p.check_no_overlap()


class TestHotSize:
    def test_hot_size_without_cold_blocks_is_full(self):
        p = Program()
        p.add(make_fn("f"))
        assert p.hot_size_of("f") == p.size_of("f")

    def test_hot_size_with_cold_tail(self):
        fb = FunctionBuilder("f", saves=1)
        fb.block("hot").alu(20)
        fb.branch("bad", "cold", "out", predict=False)
        fb.block("out").alu(2)
        fb.ret()
        fb.block("cold", unlikely=True).alu(50)
        fb.jump("out")
        fn = fb.build()
        from repro.core.outline import outline_function

        outline_function(fn)
        p = Program()
        p.add(fn)
        assert p.hot_size_of("f") < p.size_of("f")


class TestNearPairs:
    def test_near_marking_changes_size(self):
        p = Program()
        fb = FunctionBuilder("caller", saves=1)
        fb.block("a").alu(2)
        fb.call("callee", "b")
        fb.block("b").alu(1)
        fb.ret()
        p.add(fb.build())
        p.add(make_fn("callee"))
        far_size = p.size_of("caller")
        p.mark_near("caller", "callee")
        assert p.size_of("caller") == far_size - 4  # GOT load dropped
        assert p.is_near("caller", "callee")
        assert not p.is_near("callee", "caller")
