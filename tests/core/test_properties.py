"""Property-based tests on the core compiler/simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.isa import Op, TraceEntry
from repro.arch.simulator import MachineSimulator
from repro.core.ir import FunctionBuilder
from repro.core.layout import bipartite_layout, link_order_layout, pessimal_layout
from repro.core.outline import outline_function
from repro.core.program import Program
from repro.core.walker import EnterEvent, ExitEvent, Walker


# --------------------------------------------------------------------------- #
# random function generators                                                  #
# --------------------------------------------------------------------------- #

@st.composite
def branchy_function(draw, name="f"):
    """A function with a random chain of mainline blocks, each optionally
    guarded by an annotated error arm."""
    n_blocks = draw(st.integers(min_value=1, max_value=6))
    fb = FunctionBuilder(name, saves=draw(st.integers(0, 4)))
    conds = {}
    for i in range(n_blocks):
        label = f"m{i}"
        fb.block(label).alu(draw(st.integers(1, 12)))
        has_arm = draw(st.booleans())
        next_label = f"m{i + 1}" if i + 1 < n_blocks else "end"
        if has_arm:
            arm = f"a{i}"
            fb.branch(f"c{i}", arm, next_label if i + 1 < n_blocks else "end",
                      predict=False)
            taken = draw(st.booleans())
            conds[f"c{i}"] = taken
            fb.block(arm).alu(draw(st.integers(1, 8)))
            fb.jump(next_label if i + 1 < n_blocks else "end")
    fb.block("end").alu(1)
    fb.ret()
    return fb.build(), conds


def _walk(program, name, conds):
    walker = Walker(program, {"x": 0x500000})
    return walker.walk([EnterEvent(name, dict(conds)), ExitEvent(name)])


class TestOutliningPreservesSemantics:
    @settings(max_examples=40, deadline=None)
    @given(branchy_function())
    def test_same_work_before_and_after(self, fn_conds):
        """Outlining reorders code; the executed ALU work is invariant."""
        fn, conds = fn_conds
        program = Program()
        program.add(fn)
        program.layout(link_order_layout())
        before = _walk(program, "f", conds)

        outline_function(fn)
        program.invalidate("f")
        program.layout(link_order_layout())
        after = _walk(program, "f", conds)

        def count(res):
            return sum(1 for t in res.trace if t.op is Op.ALU)
        assert count(before) == count(after)

    @settings(max_examples=40, deadline=None)
    @given(branchy_function())
    def test_outlining_never_slows_the_predicted_path(self, fn_conds):
        """With every condition at its predicted (False) value, outlining
        cannot add taken branches to the mainline."""
        fn, _ = fn_conds
        all_false = {}
        program = Program()
        program.add(fn)
        program.layout(link_order_layout())
        before = _walk(program, "f", all_false)
        outline_function(fn)
        program.invalidate("f")
        program.layout(link_order_layout())
        after = _walk(program, "f", all_false)
        def taken(res):
            return sum(1 for t in res.trace if t.taken)
        assert taken(after) <= taken(before)


class TestLayoutInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=2, max_value=400),
                    min_size=1, max_size=12))
    def test_strategies_place_everything_disjointly(self, sizes):
        program = Program()
        names = []
        for i, size in enumerate(sizes):
            fb = FunctionBuilder(f"fn{i}", saves=1)
            fb.block("a").alu(size)
            fb.ret()
            program.add(fb.build())
            names.append(f"fn{i}")
        for strategy in (
            link_order_layout(),
            link_order_layout(list(reversed(names))),
            pessimal_layout(names),
            bipartite_layout(names, []),
            bipartite_layout(names[1:], names[:1]),
        ):
            program.layout(strategy)
            program.check_no_overlap()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=2, max_value=100),
                    min_size=2, max_size=8))
    def test_layout_does_not_change_trace_length(self, sizes):
        """Where code sits cannot change what executes."""
        program = Program()
        names = []
        for i, size in enumerate(sizes):
            fb = FunctionBuilder(f"fn{i}", saves=0)
            fb.block("a").alu(size)
            fb.ret()
            program.add(fb.build())
            names.append(f"fn{i}")
        events = []
        for name in names:
            events += [EnterEvent(name), ExitEvent(name)]

        lengths = set()
        for strategy in (link_order_layout(), pessimal_layout(names)):
            program.layout(strategy)
            walker = Walker(program)
            import copy

            lengths.add(walker.walk(copy.deepcopy(events)).length)
        assert len(lengths) == 1


class TestSimulatorInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1023),
                    min_size=1, max_size=300))
    def test_misses_never_exceed_accesses(self, block_ids):
        sim = MachineSimulator()
        trace = [TraceEntry(pc=0x100000 + 32 * b, op=Op.ALU)
                 for b in block_ids]
        result = sim.run(trace)
        mem = result.memory
        assert mem.icache.misses <= mem.icache.accesses
        assert mem.icache.replacement_misses <= mem.icache.misses
        assert result.cycles >= len(trace) / 2  # dual issue bound

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2047),
                    min_size=1, max_size=200))
    def test_rerun_is_never_colder(self, block_ids):
        """Running the same trace twice: the second pass cannot miss more."""
        trace = [TraceEntry(pc=0x100000 + 32 * b, op=Op.ALU)
                 for b in block_ids]
        sim = MachineSimulator()
        first = sim.run(list(trace))
        second = sim.run(list(trace))
        assert (second.memory.icache.misses
                <= first.memory.icache.misses)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 400), st.booleans()),
        min_size=1, max_size=200,
    ))
    def test_stall_accounting_consistent(self, accesses):
        sim = MachineSimulator()
        trace = []
        for i, (block, is_store) in enumerate(accesses):
            daddr = 0x600000 + 32 * block
            op = Op.STORE if is_store else Op.LOAD
            trace.append(TraceEntry(pc=0x100000 + 4 * i, op=op,
                                    daddr=daddr, dwrite=is_store))
        result = sim.run(trace)
        assert result.mcpi >= 0
        assert result.memory.stall_cycles == pytest.approx(
            result.mcpi * len(trace)
        )
