"""Tests for connection-time specialization (the paper's future-work pass)."""

import pytest

from repro.arch.isa import Op
from repro.core.ir import CondBranch, FunctionBuilder
from repro.core.layout import link_order_layout
from repro.core.program import Program
from repro.core.specialize import (
    ESTABLISHED_TCP_CONDS,
    clone_for_connection,
    partially_evaluate,
)
from repro.core.walker import EnterEvent, ExitEvent, Walker


def _state_machine_fn(name="f"):
    fb = FunctionBuilder(name, saves=2)
    fb.block("check").alu(4).load("tcb", 0, 3)
    fb.branch("established", "fast", "slow", default=True)
    fb.block("slow").alu(40).load("tcb", 64, 5)
    fb.jump("fast")
    fb.block("fast").alu(6).load("tcb", 16, 4)
    fb.branch("fin", "teardown", "done", predict=False)
    fb.block("teardown", unlikely=True).alu(20)
    fb.jump("done")
    fb.block("done").alu(3)
    fb.ret()
    return fb.build()


class TestPartialEvaluation:
    def test_pinned_branch_folds(self):
        fn = _state_machine_fn()
        stats = partially_evaluate(fn, {"established": True, "fin": False})
        assert stats.branches_folded == 2
        assert not any(isinstance(b.terminator, CondBranch)
                       for b in fn.blocks)

    def test_dead_arms_removed(self):
        fn = _state_machine_fn()
        stats = partially_evaluate(fn, {"established": True, "fin": False})
        labels = {b.label for b in fn.blocks}
        assert "slow" not in labels
        assert "teardown" not in labels
        assert stats.blocks_removed == 2
        assert stats.instructions_removed >= 60

    def test_constant_state_loads_thinned(self):
        fn = _state_machine_fn()
        before = sum(1 for b in fn.blocks for i in b.instructions
                     if i.op is Op.LOAD)
        stats = partially_evaluate(
            fn, {"established": True, "fin": False},
            constant_regions=["tcb"],
        )
        after = sum(1 for b in fn.blocks for i in b.instructions
                    if i.op is Op.LOAD)
        dead_block_loads = 5  # the removed "slow" arm's loads
        assert stats.loads_folded > 0
        assert after == before - stats.loads_folded - dead_block_loads

    def test_unpinned_branches_survive(self):
        fn = _state_machine_fn()
        partially_evaluate(fn, {"fin": False})
        assert any(isinstance(b.terminator, CondBranch)
                   and b.terminator.cond == "established"
                   for b in fn.blocks)

    def test_specialized_function_still_walks(self):
        fn = _state_machine_fn()
        partially_evaluate(fn, {"established": True, "fin": False})
        program = Program()
        program.add(fn)
        program.layout(link_order_layout())
        res = Walker(program, {"tcb": 0x700000}).walk(
            [EnterEvent("f"), ExitEvent("f")]
        )
        assert res.length > 0

    def test_specialization_shrinks_dynamic_count(self):
        plain = _state_machine_fn("plain")
        special = _state_machine_fn("special")
        partially_evaluate(
            special, {"established": True, "fin": False},
            constant_regions=["tcb"],
        )
        program = Program()
        program.add(plain)
        program.add(special)
        program.layout(link_order_layout())
        walker = Walker(program, {"tcb": 0x700000})
        conds = {"established": True, "fin": False}
        n_plain = walker.walk(
            [EnterEvent("plain", dict(conds)), ExitEvent("plain")]
        ).length
        n_special = walker.walk(
            [EnterEvent("special", dict(conds)), ExitEvent("special")]
        ).length
        assert n_special < n_plain


class TestConnectionCloning:
    def _program(self):
        program = Program()
        program.add(_state_machine_fn("tcp_in"))
        program.add(_state_machine_fn("tcp_out"))
        return program

    def test_clone_per_connection(self):
        program = self._program()
        cs = clone_for_connection(program, ["tcp_in", "tcp_out"], 1)
        assert "tcp_in@conn1" in program.names()
        assert program.resolve_entry("tcp_in") == "tcp_in@conn1"
        assert cs.connections == 1

    def test_multiple_connections_multiply_footprint(self):
        program = self._program()
        cs = clone_for_connection(program, ["tcp_in"], 1, redirect=False)
        clone_for_connection(program, ["tcp_in"], 2, clone_set=cs,
                             redirect=False)
        program.layout(link_order_layout())
        assert cs.connections == 2
        assert cs.footprint_bytes(program) == pytest.approx(
            2 * program.size_of("tcp_in@conn1"), rel=0.01
        )

    def test_duplicate_connection_rejected(self):
        program = self._program()
        cs = clone_for_connection(program, ["tcp_in"], 7)
        with pytest.raises(ValueError):
            clone_for_connection(program, ["tcp_in"], 7, clone_set=cs)

    def test_default_conds_cover_the_steady_state(self):
        assert ESTABLISHED_TCP_CONDS["established"] is True
        assert ESTABLISHED_TCP_CONDS["fin"] is False
        assert ESTABLISHED_TCP_CONDS["fragmented"] is False
