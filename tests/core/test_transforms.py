"""Unit tests for outlining, inlining, cloning and path-inlining."""

import pytest

from repro.arch.isa import Op
from repro.core.clone import clone_functions, clone_name, is_clone
from repro.core.inline import inline_call, should_inline
from repro.core.ir import (
    CallStatic,
    FunctionBuilder,
    InlineEnter,
    InlineExit,
)
from repro.core.layout import link_order_layout
from repro.core.outline import outline_function, outline_program
from repro.core.pathinline import path_inline
from repro.core.program import Program
from repro.core.walker import EnterEvent, ExitEvent, Walker


def error_handling_fn(name="f"):
    """A function shaped like the paper's example: mainline with an
    annotated error arm sitting between mainline blocks."""
    fb = FunctionBuilder(name, saves=1)
    fb.block("check").alu(2)
    fb.branch("bad_case", "panic", "good_day", predict=False)
    fb.block("panic").alu(12)
    fb.jump("good_day")
    fb.block("good_day").alu(4)
    fb.ret()
    return fb.build()


class TestOutlining:
    def test_unlikely_arm_moves_to_end(self):
        fn = error_handling_fn()
        stats = outline_function(fn)
        assert [b.label for b in fn.blocks] == ["check", "good_day", "panic"]
        assert stats.outlined_blocks == 1
        assert stats.outlined_instructions == 12

    def test_unannotated_branches_untouched(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.branch("c", "b", "d")  # no annotation
        fb.block("b").alu(1)
        fb.jump("d")
        fb.block("d").alu(1)
        fb.ret()
        fn = fb.build()
        stats = outline_function(fn)
        assert stats.outlined_blocks == 0
        assert [b.label for b in fn.blocks] == ["a", "b", "d"]

    def test_explicit_unlikely_block_moves(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.branch("c", "cold", "hot")  # unannotated branch...
        fb.block("cold", unlikely=True).alu(5)  # ...but block marked by author
        fb.jump("hot")
        fb.block("hot").alu(1)
        fb.ret()
        fn = fb.build()
        stats = outline_function(fn)
        assert stats.outlined_blocks == 1
        assert fn.blocks[-1].label == "cold"

    def test_closure_pulls_error_only_successors(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.branch("bad", "err1", "ok", predict=False)
        fb.block("err1").alu(2)
        fb.goto("err2")
        fb.block("err2").alu(2)  # reachable only from err1
        fb.jump("ok")
        fb.block("ok").alu(1)
        fb.ret()
        fn = fb.build()
        stats = outline_function(fn)
        assert stats.outlined_blocks == 2
        assert [b.label for b in fn.blocks] == ["a", "ok", "err1", "err2"]

    def test_block_with_likely_predecessor_stays(self):
        fb = FunctionBuilder("f")
        fb.block("a").alu(1)
        fb.branch("bad", "shared", "mid", predict=False)
        fb.block("mid").alu(1)
        fb.goto("shared")  # mainline falls through into "shared"
        fb.block("shared").alu(3)
        fb.ret()
        fn = fb.build()
        stats = outline_function(fn)
        assert stats.outlined_blocks == 0

    def test_entry_never_outlined(self):
        fb = FunctionBuilder("f")
        fb.block("a", unlikely=True).alu(1)
        fb.ret()
        fn = fb.build()
        assert outline_function(fn).outlined_blocks == 0

    def test_outlining_removes_taken_branch_on_hot_path(self):
        p = Program()
        fn = error_handling_fn()
        p.add(fn)
        p.layout(link_order_layout())
        w = Walker(p)
        before = w.walk([EnterEvent("f", conds={"bad_case": False}), ExitEvent("f")])
        outline_program(p)
        p.layout(link_order_layout())
        after = w.walk([EnterEvent("f", conds={"bad_case": False}), ExitEvent("f")])
        def taken(res):
            return sum(t.taken for t in res.trace)
        assert taken(after) == taken(before) - 1

    def test_outline_program_covers_all_functions(self):
        p = Program()
        p.add(error_handling_fn("f1"))
        p.add(error_handling_fn("f2"))
        stats = outline_program(p)
        assert len(stats) == 2
        assert all(s.outlined_blocks == 1 for s in stats)


class TestShouldInline:
    def _callee(self, size=50):
        fb = FunctionBuilder("g", saves=2)
        fb.block("a").alu(size)
        fb.ret()
        return fb.build()

    def test_single_call_site(self):
        d = should_inline(self._callee(), call_sites=1, callee_size=100)
        assert d.inline and d.criterion == 1

    def test_tiny_callee(self):
        d = should_inline(self._callee(4), call_sites=5, callee_size=6)
        assert d.inline and d.criterion == 2

    def test_call_site_simplification(self):
        d = should_inline(
            self._callee(), call_sites=5, callee_size=90, simplified_size=12
        )
        assert d.inline and d.criterion == 3

    def test_amortized_hot_code(self):
        d = should_inline(
            self._callee(), call_sites=5, callee_size=600, activations_per_path=8
        )
        assert d.inline and d.criterion == 4

    def test_rejects_ordinary_multi_site_function(self):
        d = should_inline(self._callee(), call_sites=3, callee_size=120)
        assert not d.inline


class TestInlineCall:
    def _pair(self):
        p = Program()
        gb = FunctionBuilder("g", saves=1)
        gb.block("inner").alu(6)
        gb.ret()
        p.add(gb.build())
        fb = FunctionBuilder("f", saves=1)
        fb.block("pre").alu(2)
        fb.call("g", "post")
        fb.block("post").alu(2)
        fb.ret()
        p.add(fb.build())
        return p

    def test_inline_splices_body(self):
        p = self._pair()
        inline_call(p, "f", "pre")
        f = p.function("f")
        assert not any(isinstance(b.terminator, CallStatic) for b in f.blocks)
        labels = [b.label for b in f.blocks]
        assert any("$g$" in label for label in labels)

    def test_inline_is_smaller_than_call(self):
        p = self._pair()
        size_before = p.materialized("f").size + p.materialized("g").size
        inline_call(p, "f", "pre")
        # caller alone now contains everything, minus call + pro/epilogue
        assert p.materialized("f").size < size_before

    def test_inline_preserves_trace_semantics(self):
        p = self._pair()
        p.layout(link_order_layout())
        before = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        inline_call(p, "f", "pre")
        p.layout(link_order_layout())
        after = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        def alu(res):
            return sum(t.op is Op.ALU for t in res.trace)
        assert alu(before) == alu(after)
        assert after.length < before.length  # overhead gone

    def test_simplify_drops_alu_work(self):
        p1, p2 = self._pair(), self._pair()
        inline_call(p1, "f", "pre", simplify=0.0)
        inline_call(p2, "f", "pre", simplify=0.5)
        assert p2.materialized("f").size < p1.materialized("f").size

    def test_non_call_site_rejected(self):
        p = self._pair()
        with pytest.raises(ValueError):
            inline_call(p, "f", "post")


class TestCloning:
    def _program(self):
        p = Program()
        gb = FunctionBuilder("lib", saves=1, library=True)
        gb.block("a").alu(3)
        gb.ret()
        p.add(gb.build())
        fb = FunctionBuilder("path_a", saves=1)
        fb.block("a").alu(2)
        fb.call("lib", "b")
        fb.block("b").alu(1)
        fb.call("path_b", "c")
        fb.block("c").alu(1)
        fb.ret()
        p.add(fb.build())
        hb = FunctionBuilder("path_b", saves=1)
        hb.block("a").alu(2)
        hb.ret()
        p.add(hb.build())
        return p

    def test_clones_added_and_aliased(self):
        p = self._program()
        stats = clone_functions(p, ["path_a", "path_b"])
        assert clone_name("path_a") in p.names()
        assert p.resolve_entry("path_a") == clone_name("path_a")
        assert sorted(stats.cloned) == sorted(
            [clone_name("path_a"), clone_name("path_b")]
        )

    def test_clone_to_clone_calls_retargeted(self):
        p = self._program()
        clone_functions(p, ["path_a", "path_b"])
        clone = p.function(clone_name("path_a"))
        callees = clone.callees()
        assert clone_name("path_b") in callees
        assert "lib" in callees  # library not cloned

    def test_specialized_clone_is_smaller(self):
        p = self._program()
        clone_functions(p, ["path_b"])
        assert p.materialized(clone_name("path_b")).size < p.materialized("path_b").size

    def test_clone_calls_are_near(self):
        p = self._program()
        clone_functions(p, ["path_a", "path_b"])
        assert p.is_near(clone_name("path_a"), clone_name("path_b"))
        assert p.is_near(clone_name("path_a"), "lib")

    def test_no_specialize_keeps_far_calls(self):
        p = self._program()
        clone_functions(p, ["path_a", "path_b"], specialize=False)
        assert not p.is_near(clone_name("path_a"), clone_name("path_b"))

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            clone_functions(self._program(), ["ghost"])

    def test_is_clone_predicate(self):
        assert is_clone(clone_name("x"))
        assert not is_clone("x")

    def test_walker_follows_alias(self):
        p = self._program()
        clone_functions(p, ["path_a", "path_b"])
        p.layout(link_order_layout())
        res = Walker(p).walk([EnterEvent("path_a"), ExitEvent("path_a")])
        base = p.address_of(clone_name("path_a"))
        assert res.trace[0].pc == base


class TestPathInline:
    def _layered(self):
        """down-call chain: bottom dispatches dynamically to mid, mid to top."""
        p = Program()
        for name, nxt in (("bottom", "mid"), ("mid", "top"), ("top", None)):
            fb = FunctionBuilder(name, saves=1)
            fb.block("work").alu(3)
            if nxt:
                fb.call_dynamic("up", "done")
                fb.block("done").alu(2)
            fb.ret()
            p.add(fb.build())
        return p

    def _events(self):
        return [
            EnterEvent("bottom"),
            EnterEvent("mid"),
            EnterEvent("top"),
            ExitEvent("top"),
            ExitEvent("mid"),
            ExitEvent("bottom"),
        ]

    def test_merged_function_created(self):
        p = self._layered()
        stats = path_inline(p, "merged", ["bottom", "mid", "top"])
        assert "merged" in p.names()
        assert p.resolve_entry("bottom") == "merged"
        assert stats.call_overhead_removed > 0

    def test_markers_replace_dispatch(self):
        p = self._layered()
        path_inline(p, "merged", ["bottom", "mid", "top"])
        merged = p.function("merged")
        enters = [b for b in merged.blocks if isinstance(b.terminator, InlineEnter)]
        exits = [b for b in merged.blocks if isinstance(b.terminator, InlineExit)]
        assert len(enters) == 2
        assert len(exits) == 2

    def test_walk_consumes_same_event_stream(self):
        p = self._layered()
        p.layout(link_order_layout())
        before = Walker(p).walk(self._events())
        path_inline(p, "merged", ["bottom", "mid", "top"], simplify_per_join=0)
        p.layout(link_order_layout())
        after = Walker(p).walk(self._events())
        def alu(res):
            return sum(t.op is Op.ALU for t in res.trace)
        assert alu(after) == alu(before)
        assert after.length < before.length
        # no dynamic dispatch remains on the merged path
        assert sum(t.op is Op.JSR for t in after.trace) == 0

    def test_originals_preserved(self):
        p = self._layered()
        path_inline(p, "merged", ["bottom", "mid", "top"])
        assert "bottom" in p.names()
        assert "mid" in p.names()

    def test_library_member_rejected(self):
        p = self._layered()
        p.function("mid").library = True
        with pytest.raises(ValueError):
            path_inline(p, "merged", ["bottom", "mid", "top"])

    def test_member_without_dispatch_rejected(self):
        p = self._layered()
        with pytest.raises(ValueError):
            path_inline(p, "merged", ["top", "mid"])

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            path_inline(self._layered(), "merged", [])

    def test_simplification_reduces_size(self):
        p1, p2 = self._layered(), self._layered()
        path_inline(p1, "m", ["bottom", "mid", "top"], simplify_per_join=0)
        path_inline(p2, "m", ["bottom", "mid", "top"], simplify_per_join=3)
        assert p2.materialized("m").size < p1.materialized("m").size
