"""Unit tests for the event-stream walker."""

import pytest

from repro.arch.isa import Op
from repro.core.ir import FunctionBuilder
from repro.core.layout import link_order_layout
from repro.core.program import Program
from repro.core.walker import EnterEvent, ExitEvent, MarkEvent, Walker, WalkError


def build_program(*fns):
    p = Program()
    for fn in fns:
        p.add(fn)
    p.layout(link_order_layout())
    return p


def straight_line(name="f", alu=4):
    fb = FunctionBuilder(name, saves=1)
    fb.block("main").alu(alu)
    fb.ret()
    return fb.build()


class TestBasicWalk:
    def test_trace_covers_prologue_body_epilogue(self):
        p = build_program(straight_line(alu=4))
        res = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        ops = [t.op for t in res.trace]
        assert ops.count(Op.ALU) == 4
        assert ops[-1] is Op.RET
        assert ops.count(Op.STORE) == 2  # RA + 1 save
        assert ops.count(Op.LOAD) == 2

    def test_addresses_match_layout(self):
        fn = straight_line()
        p = build_program(fn)
        res = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        base = p.address_of("f")
        assert res.trace[0].pc == base
        assert all(t.pc >= base for t in res.trace)

    def test_stack_references_resolve_below_stack_top(self):
        p = build_program(straight_line())
        w = Walker(p, stack_top=0x9000)
        res = w.walk([EnterEvent("f"), ExitEvent("f")])
        stores = [t.daddr for t in res.trace if t.op is Op.STORE]
        assert all(addr < 0x9000 for addr in stores)

    def test_ret_is_taken(self):
        p = build_program(straight_line())
        res = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        assert res.trace[-1].taken


class TestConditions:
    def _cond_fn(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("test").alu(1)
        fb.branch("fast", "quick", "slow")
        fb.block("quick").alu(2)
        fb.jump("out")
        fb.block("slow").alu(9)
        fb.block("out").alu(1)
        fb.ret()
        return fb.build()

    def test_condition_selects_path(self):
        p = build_program(self._cond_fn())
        w = Walker(p)
        fast = w.walk([EnterEvent("f", conds={"fast": True}), ExitEvent("f")])
        slow = w.walk([EnterEvent("f", conds={"fast": False}), ExitEvent("f")])
        assert slow.length > fast.length

    def test_missing_condition_uses_default(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("t").alu(1)
        fb.branch("c", "a", "b", default=False)
        fb.block("a").alu(50)
        fb.block("b").alu(1)
        fb.ret()
        p = build_program(fb.build())
        res = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        assert sum(t.op is Op.ALU for t in res.trace) == 2

    def test_int_condition_is_loop_count(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("head").alu(1)
        fb.block("body").alu(1)
        fb.branch("more", "body", "done")
        fb.block("done").alu(1)
        fb.ret()
        p = build_program(fb.build())
        res = Walker(p).walk([EnterEvent("f", conds={"more": 3}), ExitEvent("f")])
        # body runs 1 (fallthrough) + 3 (loop-back) times
        assert sum(t.op is Op.ALU for t in res.trace) == 1 + 4 + 1

    def test_list_condition_pops_per_activation(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("a").alu(1)
        fb.call("g", "b")
        fb.block("b").alu(1)
        fb.call("g", "c")
        fb.block("c").alu(1)
        fb.ret()
        caller = fb.build()
        # give g a branch to observe
        gb = FunctionBuilder("g", saves=0)
        gb.block("t").alu(1)
        gb.branch("flag", "yes", "no")
        gb.block("yes").alu(10)
        gb.block("no").alu(1)
        gb.ret()
        p = build_program(caller, gb.build())
        res = Walker(p).walk(
            [EnterEvent("f", conds={"g.flag": [True, False]}), ExitEvent("f")]
        )
        alu = sum(t.op is Op.ALU for t in res.trace)
        # first activation takes yes (10+1+1), second skips it (1+1)
        assert alu == 1 + (1 + 10 + 1) + 1 + (1 + 1) + 1

    def test_callable_condition(self):
        flips = iter([True, False, False])
        fb = FunctionBuilder("f", saves=0)
        fb.block("head").alu(1)
        fb.block("body").alu(1)
        fb.branch("more", "body", "done")
        fb.block("done").alu(1)
        fb.ret()
        p = build_program(fb.build())
        res = Walker(p).walk(
            [EnterEvent("f", conds={"more": lambda: next(flips)}), ExitEvent("f")]
        )
        assert sum(t.op is Op.ALU for t in res.trace) == 1 + 2 + 1


class TestCalls:
    def test_static_call_walks_callee(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("a").alu(1)
        fb.call("g", "b")
        fb.block("b").alu(1)
        fb.ret()
        p = build_program(fb.build(), straight_line("g", alu=7))
        res = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        g_base = p.address_of("g")
        g_size = p.size_of("g")
        inside = [t for t in res.trace if g_base <= t.pc < g_base + g_size]
        assert sum(t.op is Op.ALU for t in inside) == 7

    def test_dynamic_call_consumes_events(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("a").alu(1)
        fb.call_dynamic("up", "b")
        fb.block("b").alu(1)
        fb.ret()
        p = build_program(fb.build(), straight_line("g", alu=3))
        res = Walker(p).walk(
            [
                EnterEvent("f"),
                EnterEvent("g"),
                ExitEvent("g"),
                ExitEvent("f"),
            ]
        )
        assert sum(t.op is Op.JSR for t in res.trace) == 1

    def test_dynamic_call_without_event_fails(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("a").alu(1)
        fb.call_dynamic("up", "b")
        fb.block("b").alu(1)
        fb.ret()
        p = build_program(fb.build())
        with pytest.raises(WalkError):
            Walker(p).walk([EnterEvent("f"), ExitEvent("f")])

    def test_mismatched_exit_fails(self):
        p = build_program(straight_line())
        with pytest.raises(WalkError):
            Walker(p).walk([EnterEvent("f"), ExitEvent("other")])

    def test_nested_stack_pointers_differ(self):
        gb = FunctionBuilder("g", saves=0, frame=64)
        gb.block("m").store("stack", 32)
        gb.ret()
        fb = FunctionBuilder("f", saves=0, frame=64)
        fb.block("a").store("stack", 32)
        fb.call("g", "b")
        fb.block("b").alu(1)
        fb.ret()
        p = build_program(fb.build(), gb.build())
        res = Walker(p, stack_top=0x8000).walk([EnterEvent("f"), ExitEvent("f")])
        stores = [t.daddr for t in res.trace if t.op is Op.STORE and t.daddr]
        # two RA saves + two explicit stores, all in distinct frame slots
        assert len(set(stores)) == 4


class TestDataResolution:
    def test_event_data_overrides_global(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("a").load("msg", 0)
        fb.ret()
        p = build_program(fb.build())
        w = Walker(p, {"msg": 0x1000})
        r1 = w.walk([EnterEvent("f"), ExitEvent("f")])
        r2 = w.walk([EnterEvent("f", data={"msg": 0x2000}), ExitEvent("f")])
        addr1 = next(t.daddr for t in r1.trace if t.op is Op.LOAD)
        addr2 = next(t.daddr for t in r2.trace if t.op is Op.LOAD)
        assert addr1 == 0x1000
        assert addr2 == 0x2000

    def test_unknown_region_fails(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("a").load("mystery", 0)
        fb.ret()
        p = build_program(fb.build())
        with pytest.raises(WalkError):
            Walker(p).walk([EnterEvent("f"), ExitEvent("f")])

    def test_indexed_ref_advances_per_iteration(self):
        fb = FunctionBuilder("f", saves=0, leaf=True)
        fb.block("head").alu(1)
        fb.block("body").load("buf", 0, indexed=True, stride=8)
        fb.branch("more", "body", "done")
        fb.block("done").alu(1)
        fb.ret()
        p = build_program(fb.build())
        res = Walker(p, {"buf": 0x4000}).walk(
            [EnterEvent("f", conds={"more": 2}), ExitEvent("f")]
        )
        loads = [t.daddr for t in res.trace if t.op is Op.LOAD]
        assert loads == [0x4000, 0x4008, 0x4010]


class TestMarks:
    def test_marks_record_positions(self):
        p = build_program(straight_line())
        res = Walker(p).walk(
            [
                MarkEvent("before"),
                EnterEvent("f"),
                ExitEvent("f"),
                MarkEvent("after"),
            ]
        )
        assert res.mark_index("before") == 0
        assert res.mark_index("after") == res.length
        assert res.span("before", "after") == res.length

    def test_unknown_mark_raises(self):
        p = build_program(straight_line())
        res = Walker(p).walk([EnterEvent("f"), ExitEvent("f")])
        with pytest.raises(KeyError):
            res.mark_index("nope")
