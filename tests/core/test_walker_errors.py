"""Walker failure modes: the classifier role of event validation.

When a packet would NOT follow the path a path-inlined build assumed, the
walker refuses to fabricate a trace — exactly the job the paper assigns to
the run-time packet classifier.
"""

import pytest

from repro.core.ir import FunctionBuilder
from repro.core.layout import link_order_layout
from repro.core.pathinline import path_inline
from repro.core.program import Program
from repro.core.walker import EnterEvent, ExitEvent, Walker, WalkError


def _chain_program():
    p = Program()
    for name, has_up in (("bottom", True), ("mid", True), ("top", False)):
        fb = FunctionBuilder(name, saves=1)
        fb.block("work").alu(3)
        if has_up:
            fb.call_dynamic("up", "done")
            fb.block("done").alu(1)
        fb.ret()
        p.add(fb.build())
    return p


GOOD_EVENTS = [
    EnterEvent("bottom"), EnterEvent("mid"), EnterEvent("top"),
    ExitEvent("top"), ExitEvent("mid"), ExitEvent("bottom"),
]


class TestPathAssumptionViolations:
    def _pin(self):
        p = _chain_program()
        path_inline(p, "merged", ["bottom", "mid", "top"])
        p.layout(link_order_layout())
        return p

    def test_expected_path_walks(self):
        p = self._pin()
        res = Walker(p).walk([e.__class__(**e.__dict__) for e in GOOD_EVENTS])
        assert res.length > 0

    def test_wrong_next_layer_rejected(self):
        """A packet dispatching to an unexpected protocol mid-path."""
        p = self._pin()
        events = [
            EnterEvent("bottom"), EnterEvent("top"),  # skipped "mid"!
            ExitEvent("top"), ExitEvent("bottom"),
        ]
        with pytest.raises(WalkError):
            Walker(p).walk(events)

    def test_truncated_stream_rejected(self):
        p = self._pin()
        with pytest.raises(WalkError):
            Walker(p).walk([EnterEvent("bottom"), EnterEvent("mid")])

    def test_unbalanced_exit_rejected(self):
        p = self._pin()
        events = [
            EnterEvent("bottom"), EnterEvent("mid"), EnterEvent("top"),
            ExitEvent("mid"),  # wrong unwind order
        ]
        with pytest.raises(WalkError):
            Walker(p).walk(events)


class TestGeneralWalkErrors:
    def test_unknown_function_rejected(self):
        p = _chain_program()
        p.layout(link_order_layout())
        with pytest.raises(KeyError):
            Walker(p).walk([EnterEvent("ghost"), ExitEvent("ghost")])

    def test_walk_without_layout_rejected(self):
        p = _chain_program()
        with pytest.raises(KeyError):
            Walker(p).walk([EnterEvent("top"), ExitEvent("top")])

    def test_exhausted_cond_list_rejected(self):
        fb = FunctionBuilder("f", saves=0)
        fb.block("a").alu(1)
        fb.branch("c", "b", "b2")
        fb.block("b").alu(1)
        fb.block("b2").alu(1)
        fb.ret()
        p = Program()
        p.add(fb.build())
        p.layout(link_order_layout())
        with pytest.raises(WalkError):
            Walker(p).walk([
                EnterEvent("f", conds={"c": []}),  # list with no values
                ExitEvent("f"),
            ])

    def test_alias_cycle_detected(self):
        p = _chain_program()
        p.alias_entry("a", "b")
        p.alias_entry("b", "a")
        with pytest.raises(ValueError):
            p.resolve_entry("a")

    def test_runaway_loop_capped(self):
        fb = FunctionBuilder("spin", saves=0, leaf=True)
        fb.block("loop").alu(1)
        fb.branch("again", "loop", "out", default=True)  # loops forever
        fb.block("out").alu(1)
        fb.ret()
        p = Program()
        p.add(fb.build())
        p.layout(link_order_layout())
        with pytest.raises(WalkError):
            Walker(p).walk([EnterEvent("spin"), ExitEvent("spin")])


class TestVerifierWalkerAgreement:
    """IR the static verifier rejects is IR the walker refuses to trace.

    The verifier's invariants are exactly the walker's assumptions; these
    tests corrupt a path-inlined build both can see and demand they agree
    -- the static check fails AND the dynamic walk raises.
    """

    def _pinned(self):
        p = _chain_program()
        path_inline(p, "merged", ["bottom", "mid", "top"])
        p.layout(link_order_layout())
        return p

    def _events(self):
        return [e.__class__(**e.__dict__) for e in GOOD_EVENTS]

    def test_unpaired_inline_scope(self):
        from repro.analysis.verify import (
            INLINE_MISMATCH,
            UNPAIRED_INLINE,
            verify_program,
        )
        from repro.core.ir import InlineExit, Jump

        p = self._pinned()
        for blk in p.function("merged").blocks:
            if isinstance(blk.terminator, InlineExit):
                blk.terminator = Jump(blk.terminator.next)
                break
        p.invalidate("merged")  # in-place IR surgery, as a transform would
        kinds = {f.kind for f in verify_program(p)}
        assert kinds & {UNPAIRED_INLINE, INLINE_MISMATCH}
        with pytest.raises(WalkError):
            Walker(p).walk(self._events())

    def test_dangling_inline_continuation(self):
        from repro.analysis.verify import DANGLING_TARGET, verify_program
        from repro.core.ir import InlineEnter

        p = self._pinned()
        entry = p.function("merged").blocks[0]
        assert isinstance(entry.terminator, InlineEnter)
        entry.terminator.next = "nowhere$corrupted"
        p.invalidate("merged")
        assert DANGLING_TARGET in {f.kind for f in verify_program(p)}
        with pytest.raises((WalkError, KeyError)):
            Walker(p).walk(self._events())
