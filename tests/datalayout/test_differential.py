"""The engines against each other under every store mode.

The grid study's cross-engine claim is that store behaviour is modeled
*bit-identically* by the reference simulator, the fast kernels, and the
generated gensim kernels — same stall totals, same MemoryStats counters,
cold and steady, on every cell.  The committed golden table relies on
this: both CI legs regenerate one engine-free file.
"""

import pytest

from repro.arch.simcache import (
    gensim_cold_and_steady_cached,
    simulate_cold_and_steady_cached,
)
from repro.arch.simulator import AlphaConfig, MachineSimulator
from repro.core.fastwalk import FastWalker
from repro.datalayout import DATA_TECHNIQUES
from repro.harness.configs import CONFIG_NAMES, build_configured_program
from repro.harness.experiment import Experiment, _clone_events

CELLS = [(stack, config) for stack in ("tcpip", "rpc") for config in CONFIG_NAMES]
STORE_MODES = ("coalesce", "stream", "all")


@pytest.fixture(scope="module")
def walks():
    """One layout-transformed walked roundtrip per (technique, cell)."""
    from repro.datalayout.transforms import apply_data_layout

    out = {}
    for name in STORE_MODES:
        technique = DATA_TECHNIQUES[name]
        for stack, config in CELLS:
            # a fresh build per cell: the transform mutates the program
            build = build_configured_program(stack, config, None)
            apply_data_layout(
                build.program,
                pack=technique.pack,
                split=technique.split,
                block_size=technique.memory().block_size,
            )
            exp = Experiment(stack, config, base_seed=42)
            events, data_env = exp.capture_roundtrip(42)
            out[(name, stack, config)] = FastWalker(
                build.program, dict(data_env)
            ).walk(_clone_events(events))
    return out


@pytest.mark.parametrize("stack,config", CELLS)
@pytest.mark.parametrize("mode", STORE_MODES)
def test_fast_matches_reference(walks, mode, stack, config):
    walk = walks[(mode, stack, config)]
    cfg = AlphaConfig(memory=DATA_TECHNIQUES[mode].memory())
    ref_cold = MachineSimulator(cfg).run(walk.trace)
    ref_steady = MachineSimulator(cfg).run_steady_state(walk.trace)
    cold, steady = simulate_cold_and_steady_cached(walk.packed, cfg)
    assert cold == ref_cold
    assert cold.memory == ref_cold.memory
    assert steady == ref_steady
    assert steady.memory == ref_steady.memory


@pytest.mark.parametrize("stack,config", CELLS)
@pytest.mark.parametrize("mode", STORE_MODES)
def test_gensim_matches_fast(walks, mode, stack, config):
    walk = walks[(mode, stack, config)]
    cfg = AlphaConfig(memory=DATA_TECHNIQUES[mode].memory())
    fast = simulate_cold_and_steady_cached(walk.packed, cfg)
    gen = gensim_cold_and_steady_cached(walk.packed, cfg)
    assert gen == fast


@pytest.mark.parametrize("mode", ["coalesce", "all"])
def test_coalescing_modes_actually_change_the_measurement(walks, mode):
    # the differential above would pass vacuously if the mode never
    # reached the kernels; require a visible effect somewhere in the grid
    cfg = AlphaConfig(memory=DATA_TECHNIQUES[mode].memory())
    base_cfg = AlphaConfig()
    changed = 0
    for stack, config in CELLS:
        walk = walks[(mode, stack, config)]
        _, steady = simulate_cold_and_steady_cached(walk.packed, cfg)
        _, base = simulate_cold_and_steady_cached(walk.packed, base_cfg)
        if steady.memory.stall_cycles != base.memory.stall_cycles:
            changed += 1
    assert changed, f"store mode {mode!r} never moved a steady stall count"


def test_streaming_is_steady_neutral_on_roundtrip_loops(walks):
    # the grid study's "stream" finding, pinned: in a steady roundtrip
    # loop the write buffer forwards re-read stores before the b-cache's
    # contents ever matter, so non-allocating writes change nothing —
    # stream only beats the floor where the baseline already did
    cfg = AlphaConfig(memory=DATA_TECHNIQUES["stream"].memory())
    base_cfg = AlphaConfig()
    for stack, config in CELLS:
        walk = walks[("stream", stack, config)]
        _, steady = simulate_cold_and_steady_cached(walk.packed, cfg)
        _, base = simulate_cold_and_steady_cached(walk.packed, base_cfg)
        assert steady.memory.stall_cycles == base.memory.stall_cycles
