"""Store-behaviour properties on seeded random store streams.

The data-side store modes (:attr:`MemoryConfig.write_coalescing`,
:attr:`MemoryConfig.non_allocating_writes`) must never make a pure store
workload *slower*: coalescing only merges write-buffer entries, and a
store's stall cost never depends on b-cache residency, so streaming is
stall-neutral on the write side.  Streaming's cost is on the *read* side
— a later load of a streamed-past block misses the b-cache — which is
exactly why the grid study finds ``stream`` the weakest technique; the
trade-off is pinned here as a deliberate counterexample.
"""

import random

import pytest

from repro.arch.isa import Op, TraceEntry
from repro.arch.memory import MemoryConfig, MemoryHierarchy

#: instruction fetch loops far from the data segment so i-cache behaviour
#: cannot confound the store-side comparison (the b-cache is shared)
CODE_BASE = 0x100000
CODE_FOOTPRINT = 512  # instructions; well inside the 8KB i-cache

SEEDS = range(25)


def store_stream(seed, n=3000):
    """A seeded random pure-store workload with mixed locality.

    Sequential field bursts (struct writes), a small hot set (counters),
    and scattered singles — stores and ALU ops only, no loads, with the
    fetch stream looping inside the i-cache.
    """
    rng = random.Random(seed)
    entries = []
    hot = [rng.randrange(0, 1 << 15) & ~7 for _ in range(16)]
    i = 0
    while len(entries) < n:
        pc = CODE_BASE + (i % CODE_FOOTPRINT) * 4
        i += 1
        r = rng.random()
        if r < 0.5:
            base = rng.randrange(0, 1 << 16) & ~7
            for k in range(rng.randrange(1, 5)):
                addr = (base + 8 * k) % (1 << 16)
                entries.append(
                    TraceEntry(pc, Op.STORE, daddr=addr, dwrite=True)
                )
        elif r < 0.8:
            entries.append(
                TraceEntry(pc, Op.STORE, daddr=rng.choice(hot), dwrite=True)
            )
        else:
            entries.append(TraceEntry(pc, Op.ALU))
    return entries


def run_stats(trace, **overrides):
    hierarchy = MemoryHierarchy(MemoryConfig(**overrides))
    hierarchy.run(trace)
    return hierarchy.stats


class TestStoreModeMonotonicity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_coalescing_never_increases_stalls(self, seed):
        trace = store_stream(seed)
        buffered = run_stats(trace)
        coalesced = run_stats(trace, write_coalescing=True)
        assert coalesced.stall_cycles <= buffered.stall_cycles

    @pytest.mark.parametrize("seed", SEEDS)
    def test_coalescing_never_increases_evictions(self, seed):
        trace = store_stream(seed)
        buffered = run_stats(trace)
        coalesced = run_stats(trace, write_coalescing=True)
        assert (
            coalesced.write_buffer_evictions
            <= buffered.write_buffer_evictions
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_streaming_is_stall_neutral_on_pure_stores(self, seed):
        # a store's stall cost is write-buffer overflow, never b-cache
        # residency — so on a loadless stream the mode changes nothing
        trace = store_stream(seed)
        buffered = run_stats(trace)
        streaming = run_stats(trace, non_allocating_writes=True)
        assert streaming.stall_cycles == buffered.stall_cycles

    @pytest.mark.parametrize("seed", SEEDS)
    def test_combined_modes_never_increase_stalls(self, seed):
        trace = store_stream(seed)
        buffered = run_stats(trace)
        both = run_stats(
            trace, write_coalescing=True, non_allocating_writes=True
        )
        assert both.stall_cycles <= buffered.stall_cycles

    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_store_modes_leave_instruction_count_alone(self, seed):
        trace = store_stream(seed)
        counts = {
            run_stats(trace, **kw).instructions
            for kw in (
                {},
                {"write_coalescing": True},
                {"non_allocating_writes": True},
                {"write_coalescing": True, "non_allocating_writes": True},
            )
        }
        assert len(counts) == 1


class TestStreamingReadSideCost:
    """The documented trade-off: streaming can make a later *load* slower.

    This is why the grid study finds ``stream`` below the floor on the
    fewest cells — protocol state written on one roundtrip is read back
    on the next, and a non-allocated block costs a main-memory fetch.
    """

    def test_read_after_streamed_store_misses_the_bcache(self):
        def stalls(**overrides):
            addr = 0x2000
            pc = CODE_BASE
            trace = [TraceEntry(pc, Op.STORE, daddr=addr, dwrite=True)]
            # push the store out of the 4-deep buffer, then read it back
            for k in range(8):
                trace.append(
                    TraceEntry(pc, Op.STORE, daddr=0x4000 + 64 * k, dwrite=True)
                )
            trace.append(TraceEntry(pc, Op.LOAD, daddr=addr))
            return run_stats(trace, **overrides).stall_cycles

        assert stalls(non_allocating_writes=True) > stalls()
