"""The grid study surface: bounds soundness, floors, and rendering."""

import pytest

from repro.datalayout import (
    DATA_TECHNIQUES,
    TECHNIQUE_NAMES,
    datalayout_cell,
    run_datalayout_study,
)


@pytest.fixture(scope="module")
def study():
    """A narrowed but technique-complete grid (one config per stack)."""
    return run_datalayout_study(configs=("STD",))


class TestBoundsOverStoreModes:
    """The static bounds stay sound — and cold-exact — under every
    technique's store behaviour, not just the stock hierarchy."""

    @pytest.mark.parametrize("name", TECHNIQUE_NAMES)
    def test_cold_bound_collapses_onto_the_run(self, name):
        cell = datalayout_cell("tcpip", "STD", DATA_TECHNIQUES[name])
        assert cell.cold_exact
        assert cell.bounds_sound

    @pytest.mark.parametrize("name", ["coalesce", "all"])
    def test_bounds_sound_on_the_rpc_stack_too(self, name):
        cell = datalayout_cell("rpc", "CLO", DATA_TECHNIQUES[name])
        assert cell.cold_exact
        assert cell.bounds_sound


class TestStudySurface:
    def test_stacks_reports_measured_stacks_in_order(self, study):
        assert study.stacks() == ("tcpip", "rpc")

    def test_check_is_clean_on_a_completed_study(self, study):
        assert study.check() == []

    def test_baseline_is_always_included(self):
        narrow = run_datalayout_study(
            techniques=("pack",), stacks=("tcpip",), configs=("STD",)
        )
        assert {c.technique for c in narrow.cells} == {"baseline", "pack"}
        # the floor is defined by the force-included baseline cells
        assert narrow.wb_floor("tcpip") > 0

    def test_cell_lookup_raises_on_unknown_cell(self, study):
        with pytest.raises(KeyError, match="no cell"):
            study.cell("tcpip", "STD", "vectorize")

    def test_render_names_no_engine(self, study):
        # both CI legs regenerate one committed golden; an engine name in
        # the rendering would make the files engine-dependent
        text = study.render()
        for engine in ("fast", "gensim", "reference"):
            assert engine not in text
        assert "write-buffer floor [tcpip]" in text

    def test_to_json_grid_floors_match_cells(self, study):
        grid = study.to_json()
        for stack in study.stacks():
            assert grid["wb_floor"][stack] == study.wb_floor(stack)
        for name, count in grid["cells_below_floor"].items():
            assert count == study.cells_below_floor(name)

    def test_layout_techniques_report_footprint_wins(self, study):
        pack = study.cell("tcpip", "STD", "pack")
        assert pack.bytes_saved > 0
        assert pack.refs_rewritten > 0
        baseline = study.cell("tcpip", "STD", "baseline")
        assert baseline.bytes_saved == 0
        assert baseline.refs_rewritten == 0

    def test_coalescing_beats_the_floor_on_both_stacks(self, study):
        for stack in study.stacks():
            floor = study.wb_floor(stack)
            cell = study.cell(stack, "STD", "coalesce")
            assert cell.wb_steady < floor
