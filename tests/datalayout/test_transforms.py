"""The layout transforms: packing and hot/cold splitting invariants."""

import pytest

from repro.datalayout.transforms import (
    EXCLUDED_REGIONS,
    PACK_GAP,
    apply_data_layout,
    region_remaps,
)
from repro.harness.configs import build_configured_program

BLOCK = 32


@pytest.fixture()
def build():
    """A fresh (mutable) tcpip/STD build per test."""
    return build_configured_program("tcpip", "STD", None)


def survey_offsets(program):
    """region -> {offset} over scalar (non-indexed) drefs, plus hot sets."""
    offsets, hot, indexed = {}, {}, set()
    for fn in program.functions():
        for blk in fn.blocks:
            for ins in blk.instructions:
                d = ins.dref
                if d is None:
                    continue
                if d.indexed:
                    indexed.add(d.region)
                    continue
                offsets.setdefault(d.region, set()).add(d.offset)
                if not blk.unlikely:
                    hot.setdefault(d.region, set()).add(d.offset)
    return offsets, hot, indexed


class TestRegionRemaps:
    def test_pack_remap_is_injective(self, build):
        remaps, _, _ = region_remaps(
            build.program, pack=True, split=False, block_size=BLOCK
        )
        assert remaps  # the stacks do have packable regions
        for region, remap in remaps.items():
            assert len(set(remap.values())) == len(remap), region

    def test_pack_never_grows_a_region(self, build):
        remaps, layouts, _ = region_remaps(
            build.program, pack=True, split=False, block_size=BLOCK
        )
        for region, remap in remaps.items():
            for old, new in remap.items():
                assert new <= old, f"{region}: {old} -> {new} moved backward"
            assert layouts[region].span_after <= layouts[region].span_before

    def test_pack_caps_gaps_at_the_quadword(self, build):
        remaps, _, _ = region_remaps(
            build.program, pack=True, split=False, block_size=BLOCK
        )
        for region, remap in remaps.items():
            packed = sorted(remap.values())
            gaps = [b - a for a, b in zip(packed, packed[1:])]
            assert all(g <= PACK_GAP for g in gaps), region

    def test_split_puts_cold_fields_past_a_block_boundary(self, build):
        remaps, layouts, _ = region_remaps(
            build.program, pack=False, split=True, block_size=BLOCK
        )
        offsets, hot, _ = survey_offsets(build.program)
        saw_cold = False
        for region, remap in remaps.items():
            hot_offs = hot.get(region, set())
            cold_offs = offsets[region] - hot_offs
            hot_end = layouts[region].span_after
            for off in cold_offs:
                saw_cold = True
                new = remap[off]
                # the hot prefix and the cold tail never share a d-cache
                # block: cold fields resume past the next block boundary
                assert new >= hot_end
                if hot_end:
                    assert new // BLOCK > (hot_end - 1) // BLOCK
        assert saw_cold, "no region carries error-path-only fields"

    def test_excluded_and_indexed_regions_are_skipped(self, build):
        remaps, _, skipped = region_remaps(
            build.program, pack=True, split=True, block_size=BLOCK
        )
        offsets, _, indexed = survey_offsets(build.program)
        for region in EXCLUDED_REGIONS & set(offsets):
            assert region not in remaps
            assert region in skipped
        for region in indexed:
            assert region not in remaps


class TestApplyDataLayout:
    def test_noop_without_either_transform(self, build):
        before, _, _ = survey_offsets(build.program)
        report = apply_data_layout(build.program)
        assert report.rewritten == 0
        assert report.bytes_saved == 0
        after, _, _ = survey_offsets(build.program)
        assert after == before

    def test_rewrite_counts_moved_refs_only(self, build):
        remaps, _, _ = region_remaps(
            build.program, pack=True, split=False, block_size=BLOCK
        )
        moved = sum(
            1
            for fn in build.program.functions()
            for blk in fn.blocks
            for ins in blk.instructions
            if ins.dref is not None
            and not ins.dref.indexed
            and ins.dref.region in remaps
            and remaps[ins.dref.region][ins.dref.offset] != ins.dref.offset
        )
        report = apply_data_layout(build.program, pack=True)
        assert report.rewritten == moved
        assert report.bytes_saved > 0

    def test_instruction_counts_survive_the_rewrite(self, build):
        before = {
            fn.name: sum(len(blk.instructions) for blk in fn.blocks)
            for fn in build.program.functions()
        }
        apply_data_layout(build.program, pack=True, split=True)
        after = {
            fn.name: sum(len(blk.instructions) for blk in fn.blocks)
            for fn in build.program.functions()
        }
        assert after == before

    def test_packing_is_idempotent(self, build):
        first = apply_data_layout(build.program, pack=True)
        assert first.rewritten > 0
        again = apply_data_layout(build.program, pack=True)
        assert again.rewritten == 0
        assert again.bytes_saved == 0
