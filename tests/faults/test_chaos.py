"""REPRO_CHAOS parsing and rule matching."""

import pytest

from repro.faults.chaos import (
    ChaosRule,
    ChaosSpecError,
    active_rules,
    parse_rules,
    rules_summary,
)


def test_parse_single_rule_with_defaults():
    (rule,) = parse_rules("crash:STD:42")
    assert rule == ChaosRule("crash", "STD", 42, attempts=1, duration=30.0)


def test_parse_full_rule_and_wildcards():
    (rule,) = parse_rules("hang:*:*:3:0.5")
    assert rule.kind == "hang"
    assert rule.config == "*"
    assert rule.seed is None
    assert rule.attempts == 3
    assert rule.duration == 0.5


def test_parse_rule_list_skips_blanks():
    rules = parse_rules("crash:STD:42; ;perturb:ALL:59")
    assert [r.kind for r in rules] == ["crash", "perturb"]


@pytest.mark.parametrize("spec", [
    "crash",                 # too few fields
    "crash:STD:42:1:30:9",   # too many fields
    "melt:STD:42",           # unknown kind
    "crash:STD:soon",        # non-integer seed
    "crash:STD:42:often",    # non-integer attempts
])
def test_parse_rejects_malformed_specs(spec):
    with pytest.raises(ChaosSpecError):
        parse_rules(spec)


def test_matching_honours_config_seed_and_attempts():
    rule = ChaosRule("crash", "STD", 42, attempts=2)
    assert rule.matches("STD", 42, 0)
    assert rule.matches("STD", 42, 1)
    assert not rule.matches("STD", 42, 2)   # sabotage budget spent
    assert not rule.matches("OUT", 42, 0)
    assert not rule.matches("STD", 59, 0)
    anycell = ChaosRule("crash", "*", None)
    assert anycell.matches("PIN", 123, 0)


def test_active_rules_come_from_environment(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert active_rules() == []
    monkeypatch.setenv("REPRO_CHAOS", "crash:STD:42;hang:OUT:*:2:1.5")
    kinds = [r.kind for r in active_rules()]
    assert kinds == ["crash", "hang"]
    summary = rules_summary()
    assert summary[0].startswith("crash:STD:42")
    assert "1.5" in summary[1]


def test_crash_and_hang_are_inert_outside_workers(monkeypatch):
    from repro.faults import chaos

    monkeypatch.setenv("REPRO_CHAOS", "crash:STD:42:99")
    monkeypatch.setattr(chaos, "_in_worker", False)
    chaos.maybe_fail("STD", 42, 0)  # must not raise

    monkeypatch.setattr(chaos, "_in_worker", True)
    with pytest.raises(chaos.ChaosCrash):
        chaos.maybe_fail("STD", 42, 0)


def test_perturbation_fires_anywhere(monkeypatch):
    from repro.faults import chaos

    monkeypatch.setenv("REPRO_CHAOS", "perturb:CLO:42")
    assert chaos.perturbation("CLO", 42) == 1
    assert chaos.perturbation("CLO", 59) == 0
    assert chaos.perturbation("STD", 42) == 0
