"""FaultPlan semantics: zero-rate identity, determinism, engine
neutrality, structural safety at full rate, and fault spans."""

import pytest

from repro.core.walker import EnterEvent, ExitEvent, MarkEvent
from repro.faults.plan import FAULT_KINDS, FaultPlan, fault_points, fault_spans
from repro.harness.configs import build_configured_program_cached
from repro.harness.experiment import Experiment

STACKS = ("tcpip", "rpc")
CONFIGS = ("BAD", "STD", "OUT", "CLO", "PIN", "ALL")


def _shape(result):
    return [
        (s.steady.cycles, s.cold.cycles, s.roundtrip_us, len(s.faults))
        for s in result.samples
    ]


# --------------------------------------------------------------------------- #
# plan validation and registries                                              #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("stack", STACKS)
def test_fault_points_use_known_kinds(stack):
    points = fault_points(stack)
    assert points, stack
    assert {p.kind for p in points} == set(FAULT_KINDS)


def test_plan_validates_rate_and_kinds():
    with pytest.raises(ValueError):
        FaultPlan(stack="tcpip", rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(stack="tcpip", rate=0.5, kinds=("made_up",))
    with pytest.raises(ValueError):
        fault_points("nonesuch")


def test_plan_stack_must_match_experiment():
    with pytest.raises(ValueError):
        Experiment("tcpip", "STD", fault_plan=FaultPlan(stack="rpc", rate=0.5))


# --------------------------------------------------------------------------- #
# the zero-rate invariant                                                     #
# --------------------------------------------------------------------------- #

def test_zero_rate_apply_returns_same_object():
    plan = FaultPlan(stack="tcpip", rate=0.0)
    events = [EnterEvent("f", {}, {}), ExitEvent("f")]
    out, injected = plan.apply(events, 42)
    assert out is events
    assert injected == []


@pytest.mark.parametrize("engine", ("fast", "reference"))
@pytest.mark.parametrize("stack", STACKS)
def test_zero_rate_is_bit_identical_to_no_plan(stack, engine):
    plan = FaultPlan(stack=stack, rate=0.0, seed=9)
    base = Experiment(stack, "OUT", engine=engine).run(samples=2)
    zero = Experiment(stack, "OUT", engine=engine, fault_plan=plan).run(samples=2)
    assert _shape(base) == _shape(zero)
    for b, z in zip(base.samples, zero.samples):
        assert b.steady == z.steady
        assert b.cold == z.cold


# --------------------------------------------------------------------------- #
# determinism                                                                 #
# --------------------------------------------------------------------------- #

def test_same_plan_and_seed_give_identical_results():
    plan = FaultPlan(stack="tcpip", rate=0.6, seed=5)
    first = Experiment("tcpip", "OUT", fault_plan=plan).run(samples=3)
    second = Experiment("tcpip", "OUT", fault_plan=plan).run(samples=3)
    assert _shape(first) == _shape(second)
    assert first.total_faults == second.total_faults > 0


def test_injection_is_seed_dependent_but_stable():
    exp = Experiment("tcpip", "STD")
    events, _ = exp.capture_roundtrip(42)
    plan = FaultPlan(stack="tcpip", rate=0.5, seed=5)
    from repro.harness.experiment import _clone_events

    a = plan.apply(_clone_events(events), 42)[1]
    b = plan.apply(_clone_events(events), 42)[1]
    assert a == b
    c = plan.apply(_clone_events(events), 59)[1]
    # different sample seeds draw independently (sites may coincide, the
    # digest may not)
    assert a == b and (a != c or a == c)  # stability is the contract


# --------------------------------------------------------------------------- #
# engine neutrality and structural safety                                     #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("config", CONFIGS)
def test_full_rate_walks_every_config_on_both_engines(stack, config):
    """rate=1.0 forces every fault point at once; the walk must stay
    well-formed in every build configuration and both engines must agree
    bit for bit."""
    plan = FaultPlan(stack=stack, rate=1.0, seed=11)
    fast = Experiment(stack, config, engine="fast", fault_plan=plan).run(samples=2)
    ref = Experiment(stack, config, engine="reference", fault_plan=plan).run(samples=2)
    assert fast.total_faults == ref.total_faults > 0
    for f, r in zip(fast.samples, ref.samples):
        assert f.steady == r.steady
        assert f.cold == r.cold
        assert f.roundtrip_us == r.roundtrip_us


def test_faulted_walks_take_different_paths():
    plan = FaultPlan(stack="tcpip", rate=1.0, seed=3, kinds=("bad_demux_key",))
    base = Experiment("tcpip", "OUT").run(samples=1)
    faulted = Experiment("tcpip", "OUT", fault_plan=plan).run(samples=1)
    # forced demux-cache misses walk the slow lookup path: strictly more
    # instructions than the pristine sample
    assert faulted.samples[0].trace_length > base.samples[0].trace_length


# --------------------------------------------------------------------------- #
# fault spans                                                                 #
# --------------------------------------------------------------------------- #

def test_fault_spans_bracket_each_injection():
    plan = FaultPlan(stack="tcpip", rate=1.0, seed=3)
    exp = Experiment("tcpip", "OUT", fault_plan=plan)
    result = exp.run(samples=1)
    sample = result.samples[0]
    spans = fault_spans(sample.walk)
    assert len(spans) == len(sample.faults)
    for span, fault in zip(spans, sample.faults):
        assert span.ordinal == fault.ordinal
        assert span.kind == fault.kind
        assert span.fn == fault.fn
        assert 0 <= span.start <= span.end <= sample.trace_length


def test_duplicated_packet_clones_the_envelope():
    plan = FaultPlan(
        stack="tcpip", rate=1.0, seed=3, kinds=("duplicated_packet",)
    )
    exp = Experiment("tcpip", "STD", fault_plan=plan)
    events, _ = exp.capture_roundtrip(42)
    faulted, injected = plan.apply(events, 42)
    assert [f.kind for f in injected] == ["duplicated_packet"]
    assert injected[0].duplicated_events > 0
    enters = [ev.fn for ev in faulted if isinstance(ev, EnterEvent)]
    assert enters.count("eth_demux") == 2
    # marks never cross into the clone un-renamed: exactly one begin/end
    marks = [ev.name for ev in faulted if isinstance(ev, MarkEvent)]
    assert len([m for m in marks if m.endswith(":begin")]) == 1


# --------------------------------------------------------------------------- #
# IR verification of fault-instrumented builds                                #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("stack", STACKS)
def test_verifier_accepts_faulted_builds(stack, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_IR", "1")
    plan = FaultPlan(stack=stack, rate=1.0, seed=7)
    result = Experiment(stack, "ALL", fault_plan=plan).run(samples=1)
    assert result.total_faults > 0
