"""The generated kernels against the reference oracle.

Both gensim paths — the numpy vector kernel and the emitted specialized
source — must be *bit-identical* to ``MachineSimulator`` (and therefore
to ``FastMachine``): same SimResult, same MemoryStats counters, same
CpuStats, for every build configuration of both stacks, cold and steady,
at any warm-up depth.  A request gensim cannot serve exactly must be
declined with :class:`GensimCapabilityError`, never approximated.
"""

import pytest

from repro.arch.simulator import MachineSimulator
from repro.core.walker import Walker
from repro.gensim import (
    GenMachine,
    GensimCapabilityError,
    bound_kernel,
    have_numpy,
    simulate_cold_and_steady,
)
from repro.gensim import machine as genmachine
from repro.harness.configs import CONFIG_NAMES, build_configured_program_cached
from repro.harness.experiment import Experiment

CELLS = [(stack, config) for stack in ("tcpip", "rpc") for config in CONFIG_NAMES]
needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="the vector path needs numpy"
)
PATHS = [pytest.param("vector", marks=needs_numpy), "source"]


@pytest.fixture(scope="module")
def walks():
    """One real walked roundtrip per (stack, config) cell."""
    out = {}
    for stack, config in CELLS:
        exp = Experiment(stack, config)
        events, data_env = exp.capture_roundtrip(42)
        build = build_configured_program_cached(stack, config)
        out[(stack, config)] = Walker(build.program, data_env).walk(events)
    return out


@pytest.fixture(scope="module")
def refs(walks):
    """Reference cold/steady results per cell, computed once."""
    out = {}
    for cell, walk in walks.items():
        out[cell] = (
            MachineSimulator().run(walk.trace),
            MachineSimulator().run_steady_state(walk.trace),
        )
    return out


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("stack,config", CELLS)
def test_cold_run_bit_identical(walks, refs, stack, config, path):
    walk = walks[(stack, config)]
    ref_cold, _ = refs[(stack, config)]
    gen = GenMachine(path=path).run(walk.packed)
    assert gen == ref_cold
    assert gen.memory == ref_cold.memory
    assert gen.cpu == ref_cold.cpu


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("stack,config", CELLS)
def test_steady_state_bit_identical(walks, refs, stack, config, path):
    walk = walks[(stack, config)]
    _, ref_steady = refs[(stack, config)]
    assert GenMachine(path=path).run_steady_state(walk.packed) == ref_steady


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("stack", ["tcpip", "rpc"])
def test_simulate_cold_and_steady_matches_reference(walks, refs, stack, path):
    walk = walks[(stack, "ALL")]
    cold, steady = simulate_cold_and_steady(walk.packed, path=path)
    ref_cold, ref_steady = refs[(stack, "ALL")]
    assert cold == ref_cold
    assert steady == ref_steady


@pytest.mark.parametrize("path", PATHS)
def test_convergence_shortcut_is_exact_for_long_warmups(walks, path):
    # the fixed-point detector may skip warm passes; the result must still
    # equal the brute-force reference at any requested warm-up depth
    walk = walks[("tcpip", "CLO")]
    _, steady = simulate_cold_and_steady(walk.packed, warmup_rounds=6, path=path)
    assert steady == MachineSimulator().run_steady_state(walk.trace, warmup_rounds=6)


@pytest.mark.parametrize("path", PATHS)
def test_warm_up_evolves_state_like_reference(walks, path):
    walk = walks[("rpc", "STD")]
    ref = MachineSimulator()
    ref.warm_up(walk.trace)
    gen = GenMachine(path=path)
    gen.warm_up(walk.packed)
    assert gen.run(walk.packed) == ref.run(walk.trace)


@pytest.mark.parametrize("path", PATHS)
def test_cross_trace_warm_chain(walks, path):
    # warming with one cell's trace then measuring another exercises
    # transition chains across distinct bound kernels sharing one state
    warm = walks[("tcpip", "STD")]
    measured = walks[("tcpip", "OUT")]
    ref = MachineSimulator()
    ref.warm_up(warm.trace)
    gen = GenMachine(path=path)
    gen.warm_up(warm.packed)
    assert gen.run(measured.packed) == ref.run(measured.trace)


@needs_numpy
def test_replay_is_bit_identical_to_resolution(walks, refs):
    # a second cold machine over the same bound kernel takes the memoized
    # transition replay, not a fresh vectorized pass — results must not
    # move by a bit
    walk = walks[("rpc", "BAD")]
    first = GenMachine(path="vector").run_steady_state(walk.packed)
    kernel = bound_kernel(walk.packed, path="vector")
    assert kernel._transitions  # the transition memo is populated
    again = GenMachine(path="vector").run_steady_state(walk.packed)
    assert again == first == refs[("rpc", "BAD")][1]


def test_attribution_sink_is_declined():
    with pytest.raises(GensimCapabilityError, match="attribution"):
        GenMachine(sink=object())


def test_vector_path_without_numpy_is_declined(monkeypatch):
    monkeypatch.setattr(genmachine, "_HAVE_NUMPY", False)
    with pytest.raises(GensimCapabilityError, match="numpy"):
        GenMachine(path="vector")
    # auto degrades loudly-documentedly to the source path, never errors
    assert GenMachine(path="auto").path == "source"


def test_unknown_path_rejected():
    with pytest.raises(ValueError, match="unknown gensim path"):
        GenMachine(path="simd")


@pytest.mark.parametrize("path", PATHS)
def test_empty_trace(path):
    result = GenMachine(path=path).run([])
    assert result.memory.instructions == 0
    assert result.cpu.instructions == 0
    assert result.memory.stall_cycles == 0
