"""gensim as a harness engine: dispatch, guarding, caching, faults.

The engine registry gained "gensim" and "guarded-gensim"; every layer
that consumes the registry — Settings validation, the Experiment
dispatch, the simcache, the sweep — must treat them as first-class and
bit-identical to the engines they shadow, including under injected
workload faults.
"""

import pytest

from repro.api.settings import ENGINES, Settings, validate_engine
from repro.arch import simcache
from repro.faults.plan import FaultPlan
from repro.gensim import GensimCapabilityError
from repro.harness.experiment import Experiment, resolve_engine


def _shape(result):
    return [
        (s.steady.cycles, s.cold.cycles, s.roundtrip_us, len(s.faults))
        for s in result.samples
    ]


# --------------------------------------------------------------------------- #
# registry sync                                                               #
# --------------------------------------------------------------------------- #


def test_registry_contains_the_gensim_engines():
    assert "gensim" in ENGINES
    assert "guarded-gensim" in ENGINES


def test_fail_fast_error_names_every_registered_engine():
    with pytest.raises(ValueError) as err:
        validate_engine("nonesuch")
    for engine in ENGINES:
        assert engine in str(err.value)


def test_settings_accept_every_registered_engine():
    for engine in ENGINES:
        assert Settings(engine=engine).engine == engine
        assert Settings.from_env({}, engine=engine).engine == engine


def test_deprecated_shim_validates_against_the_same_registry():
    with pytest.warns(DeprecationWarning):
        assert resolve_engine("gensim") == "gensim"
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError) as err:
            resolve_engine("nonesuch")
    for engine in ENGINES:
        assert engine in str(err.value)


def test_experiment_dispatch_covers_every_registered_engine():
    # every registry member must run end to end, not just validate
    shapes = {}
    for engine in ENGINES:
        result = Experiment("tcpip", "STD", engine=engine).run(samples=1)
        shapes[engine] = _shape(result)
    assert len({tuple(map(tuple, s)) for s in shapes.values()}) == 1


# --------------------------------------------------------------------------- #
# engine parity                                                               #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("stack,config", [("tcpip", "BAD"), ("rpc", "ALL")])
def test_gensim_experiment_matches_fast_and_reference(stack, config):
    results = {
        engine: Experiment(stack, config, engine=engine).run(samples=2)
        for engine in ("fast", "gensim", "guarded-gensim", "reference")
    }
    base = _shape(results["fast"])
    for engine, result in results.items():
        assert _shape(result) == base, engine
    for f, g in zip(results["fast"].samples, results["gensim"].samples):
        assert f.cold == g.cold
        assert f.steady == g.steady


def test_guarded_gensim_records_no_divergence_on_clean_runs():
    exp = Experiment("rpc", "STD", engine="guarded-gensim")
    exp.run(samples=2)
    assert exp.divergences == []
    assert exp._live_engine == "guarded-gensim"


def test_guarded_gensim_falls_back_on_divergence():
    # a chaos perturbation models a gensim bug: the guard must catch it,
    # record the divergence and degrade to the reference engine
    from repro.faults.chaos import parse_rules

    settings = Settings(
        engine="guarded-gensim",
        chaos=tuple(parse_rules("perturb:STD:*")),
    )
    exp = Experiment("tcpip", "STD", settings=settings)
    result = exp.run(samples=2)
    assert exp.divergences
    assert exp._live_engine == "reference"
    clean = Experiment("tcpip", "STD", engine="reference").run(samples=2)
    assert _shape(result) == _shape(clean)


# --------------------------------------------------------------------------- #
# parity under faults (rate 1.0: every opportunity fires)                     #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("stack", ("tcpip", "rpc"))
def test_full_rate_faults_bit_identical_to_reference(stack):
    plan = FaultPlan(stack=stack, rate=1.0, seed=11)
    gen = Experiment(stack, "STD", engine="gensim", fault_plan=plan).run(samples=2)
    ref = Experiment(stack, "STD", engine="reference", fault_plan=plan).run(samples=2)
    assert _shape(gen) == _shape(ref)
    assert gen.total_faults == ref.total_faults > 0
    for g, r in zip(gen.samples, ref.samples):
        assert g.cold == r.cold
        assert g.steady == r.steady


# --------------------------------------------------------------------------- #
# simcache keying                                                             #
# --------------------------------------------------------------------------- #


def test_gensim_cache_entries_are_keyed_apart_from_fast(walk_std):
    simcache.clear_caches()
    fast = simcache.simulate_cold_and_steady_cached(walk_std.packed)
    misses_after_fast = simcache.misses
    gen = simcache.gensim_cold_and_steady_cached(walk_std.packed)
    # the gensim memory entry is a fresh miss (the cpu side legitimately
    # shares the engine-independent cpu-key cache)
    assert simcache.misses > misses_after_fast
    assert gen == fast
    hits_before = simcache.hits
    again = simcache.gensim_cold_and_steady_cached(walk_std.packed)
    assert simcache.hits > hits_before
    assert again == gen
    assert again[0].memory is not gen[0].memory  # copies, never the stored pair
    simcache.clear_caches()


def test_gensim_cache_key_carries_generator_version_and_cell(walk_std):
    from repro.gensim.machine import GEN_VERSION, cell_fingerprint

    simcache.clear_caches()
    simcache.gensim_cold_and_steady_cached(walk_std.packed)
    modes = [key[2] for key in simcache._results]
    assert modes == [f"gensim:{GEN_VERSION}:{cell_fingerprint()}:steady:2"]
    simcache.clear_caches()


@pytest.fixture(scope="module")
def walk_std():
    from repro.core.walker import Walker
    from repro.harness.configs import build_configured_program_cached

    exp = Experiment("tcpip", "STD")
    events, data_env = exp.capture_roundtrip(42)
    build = build_configured_program_cached("tcpip", "STD")
    return Walker(build.program, data_env).walk(events)


# --------------------------------------------------------------------------- #
# capability boundaries                                                       #
# --------------------------------------------------------------------------- #


def test_profile_cell_declines_gensim():
    from repro.harness.profile import profile_cell

    for engine in ("gensim", "guarded-gensim"):
        with pytest.raises(GensimCapabilityError, match="attribution"):
            profile_cell("tcpip", "STD", engine=engine)
