"""Kernel memoization and fingerprint invalidation.

A bound kernel is memoized on (generator version, cell fingerprint,
trace fingerprint, path).  Mutating anything a kernel was specialized
against — cache geometry, machine latencies, the code layout, or the
trace itself — must move the key and force regeneration; re-requesting
an unchanged cell must not.
"""

import copy
import dataclasses

import pytest

from repro.arch.memory import MemoryConfig
from repro.arch.simulator import AlphaConfig, MachineSimulator
from repro.core.walker import Walker
from repro.gensim import (
    GenMachine,
    bound_kernel,
    cell_fingerprint,
    clear_kernels,
    generated_kernel_count,
    have_numpy,
)
from repro.harness.configs import build_configured_program
from repro.harness.experiment import Experiment

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="the vector path needs numpy"
)


@pytest.fixture(scope="module")
def cell():
    """One walked roundtrip plus a differently-laid-out sibling."""
    exp = Experiment("tcpip", "STD")
    events, data_env = exp.capture_roundtrip(42)
    build = build_configured_program("tcpip", "STD")
    walk = Walker(build.program, data_env).walk(events)
    events2, data_env2 = exp.capture_roundtrip(42)
    build2 = build_configured_program("tcpip", "CLO")
    walk2 = Walker(build2.program, data_env2).walk(events2)
    return walk, walk2


def _generations_for(packed, config=None, path="source"):
    before = generated_kernel_count()
    bound_kernel(packed, config, path)
    return generated_kernel_count() - before


def test_unchanged_cell_reuses_the_kernel(cell):
    walk, _ = cell
    assert _generations_for(walk.packed) in (0, 1)  # first call may build
    assert _generations_for(walk.packed) == 0  # second never does


def test_geometry_mutation_regenerates(cell):
    walk, _ = cell
    bound_kernel(walk.packed)  # ensure the baseline kernel exists
    mem = dataclasses.replace(MemoryConfig(), icache_size=16 * 1024)
    cfg = dataclasses.replace(AlphaConfig(), memory=mem)
    assert cell_fingerprint(cfg) != cell_fingerprint(AlphaConfig())
    assert _generations_for(walk.packed, cfg) == 1


def test_latency_mutation_regenerates(cell):
    walk, _ = cell
    bound_kernel(walk.packed)
    mem = dataclasses.replace(MemoryConfig(), stream_hit_cycles=11)
    cfg = dataclasses.replace(AlphaConfig(), memory=mem)
    assert cell_fingerprint(cfg) != cell_fingerprint(AlphaConfig())
    assert _generations_for(walk.packed, cfg) == 1


def test_layout_mutation_regenerates(cell):
    # a re-laid-out program produces a different packed trace: the trace
    # fingerprint moves even though the cell geometry is unchanged
    walk, walk2 = cell
    assert walk.packed.fingerprint() != walk2.packed.fingerprint()
    bound_kernel(walk.packed)
    assert _generations_for(walk2.packed) in (0, 1)  # first sighting builds
    assert _generations_for(walk2.packed) == 0


def test_trace_mutation_regenerates(cell):
    walk, _ = cell
    bound_kernel(walk.packed)
    grown = copy.deepcopy(walk.packed)
    grown.append(walk.packed.pcs[0], walk.packed.ops[0], daddr=walk.packed.daddrs[0])
    assert grown.fingerprint() != walk.packed.fingerprint()
    assert _generations_for(grown) == 1


@needs_numpy
def test_path_is_part_of_the_key(cell):
    walk, _ = cell
    bound_kernel(walk.packed, path="source")
    assert _generations_for(walk.packed, path="vector") in (0, 1)
    assert _generations_for(walk.packed, path="vector") == 0


def test_regenerated_kernels_stay_exact(cell):
    # regeneration is not just cache hygiene: the fresh kernel for the
    # mutated geometry must match the oracle under that geometry
    walk, _ = cell
    mem = dataclasses.replace(
        MemoryConfig(), icache_size=4 * 1024, write_buffer_depth=2
    )
    cfg = dataclasses.replace(AlphaConfig(), memory=mem)
    paths = ("vector", "source") if have_numpy() else ("source",)
    for path in paths:
        assert GenMachine(cfg, path=path).run(walk.packed) == MachineSimulator(
            cfg
        ).run(walk.trace)


def test_clear_kernels_forces_regeneration(cell):
    walk, _ = cell
    bound_kernel(walk.packed)
    clear_kernels()
    assert _generations_for(walk.packed) == 1
