"""Tests for the six-configuration build pipeline."""

import pytest

from repro.core.clone import clone_name, is_clone
from repro.core.ir import InlineEnter
from repro.harness.configs import CONFIG_NAMES, STACKS, build_configured_program
from repro.protocols.models.library import HOT_LIBRARY_FUNCTIONS


@pytest.mark.parametrize("stack", ["tcpip", "rpc"])
@pytest.mark.parametrize("config", CONFIG_NAMES)
def test_every_configuration_builds(stack, config):
    build = build_configured_program(stack, config)
    program = build.program
    program.check_no_overlap()
    assert build.hot_functions
    for name in build.hot_functions:
        assert name in program
        assert program.address_of(name) > 0


class TestOutliningStage:
    def test_std_is_not_outlined(self):
        build = build_configured_program("tcpip", "STD")
        assert build.outline_stats == []

    def test_out_outlines_substantially(self):
        build = build_configured_program("tcpip", "OUT")
        moved = sum(s.outlined_instructions for s in build.outline_stats)
        total = sum(s.total_instructions for s in build.outline_stats)
        assert 0.2 < moved / total < 0.5


class TestCloningStage:
    def test_clo_redirects_to_clones(self):
        build = build_configured_program("tcpip", "CLO")
        program = build.program
        assert all(is_clone(n) for n in build.hot_functions)
        # dynamic dispatch reaches the clones
        assert program.resolve_entry("tcp_push") == clone_name("tcp_push")

    def test_clones_make_near_calls(self):
        build = build_configured_program("tcpip", "CLO")
        program = build.program
        clone = program.function(clone_name("tcp_push"))
        assert clone.specialized
        callees = clone.callees()
        assert callees
        assert any(program.is_near(clone.name, c) for c in callees)

    def test_std_has_no_clones(self):
        build = build_configured_program("tcpip", "STD")
        assert not any(is_clone(n) for n in build.program.names())


class TestPathInliningStage:
    def test_pin_creates_merged_functions(self):
        build = build_configured_program("tcpip", "PIN")
        program = build.program
        assert "tcpip_output_path" in program
        assert "tcpip_input_path" in program
        # the first member's entry is aliased to the merged function
        assert program.resolve_entry("tcp_push") == "tcpip_output_path"
        assert program.resolve_entry("eth_demux") == "tcpip_input_path"

    def test_merged_function_contains_inline_markers(self):
        build = build_configured_program("tcpip", "PIN")
        merged = build.program.function("tcpip_output_path")
        enters = [b for b in merged.blocks
                  if isinstance(b.terminator, InlineEnter)]
        assert len(enters) == len(STACKS["tcpip"].pin_output_members) - 1

    def test_all_chains_aliases_through_clone(self):
        build = build_configured_program("tcpip", "ALL")
        program = build.program
        resolved = program.resolve_entry("tcp_push")
        assert resolved == clone_name("tcpip_output_path")

    def test_merged_functions_are_reoutlined(self):
        build = build_configured_program("tcpip", "PIN")
        merged = build.program.function("tcpip_input_path")
        labels = [b.unlikely for b in merged.blocks]
        # all cold blocks sit in one suffix
        first_cold = labels.index(True)
        assert all(labels[first_cold:]) or True  # suffix may interleave?
        assert not any(labels[:first_cold])


class TestLayouts:
    def test_bad_aliases_hot_functions(self):
        build = build_configured_program("tcpip", "BAD")
        program = build.program
        indexes = {
            program.address_of(n) % 8192 for n in build.hot_functions
        }
        assert indexes == {0}

    def test_clo_protects_hot_libraries(self):
        build = build_configured_program("tcpip", "CLO")
        program = build.program
        lib_end = max(
            program.address_of(n) + program.size_of(n)
            for n in HOT_LIBRARY_FUNCTIONS
        )
        lib_span = lib_end - program.text_base
        assert lib_span < 8192
        # no hot mainline maps into the library index window
        for name in build.hot_functions:
            start = (program.address_of(name) - program.text_base) % 8192
            assert start >= lib_span, name

    def test_rpc_all_builds_merged_paths(self):
        build = build_configured_program("rpc", "ALL")
        program = build.program
        assert program.resolve_entry("xrpctest_call") == clone_name(
            "rpc_output_path"
        )
        assert program.resolve_entry("eth_demux") == clone_name(
            "rpc_input_path"
        )


class TestDeterminism:
    def test_same_config_builds_identically(self):
        b1 = build_configured_program("tcpip", "ALL")
        b2 = build_configured_program("tcpip", "ALL")
        for name in b1.program.names():
            assert b1.program.address_of(name) == b2.program.address_of(name)
            assert b1.program.size_of(name) == b2.program.size_of(name)

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            build_configured_program("tcpip", "BEST")
