"""Tests for the measurement driver and latency assembly."""

import pytest

from repro.harness.configs import build_configured_program
from repro.harness.experiment import ENGINES, Experiment, resolve_engine
from repro.harness.latency import CONTROLLER_ROUNDTRIP_US, LatencyModel


class TestResolveEngine:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert resolve_engine("fast") == "fast"

    def test_env_var_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert resolve_engine() == "reference"

    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine() == "fast"

    def test_unknown_engine_fails_fast_listing_valid_ones(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_engine("turbo")
        message = str(excinfo.value)
        assert "turbo" in message
        for engine in ENGINES:
            assert engine in message

    def test_unknown_env_value_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp")
        with pytest.raises(ValueError) as excinfo:
            Experiment("tcpip", "STD")
        assert "REPRO_SIM_ENGINE" in str(excinfo.value)


class TestLatencyModel:
    def test_tcpip_uses_symmetric_processing(self):
        model = LatencyModel("tcpip")
        rtt = model.roundtrip_us(50.0)
        assert rtt == pytest.approx(
            CONTROLLER_ROUNDTRIP_US + 100.0 + model.constant_us
        )

    def test_rpc_uses_fixed_server_reference(self):
        model = LatencyModel("rpc")
        rtt = model.roundtrip_us(60.0, server_processing_us=44.0)
        assert rtt == pytest.approx(
            CONTROLLER_ROUNDTRIP_US + 60.0 + 44.0 + model.constant_us
        )

    def test_adjustment_subtracts_controller_share(self):
        assert LatencyModel.adjusted_us(310.0) == pytest.approx(100.0)


class TestExperiment:
    def test_same_seed_reproduces_trace_length(self):
        exp = Experiment("tcpip", "STD")
        build = build_configured_program("tcpip", "STD", exp.opts)
        s1 = exp.run_sample(build, seed=5)
        s2 = exp.run_sample(build, seed=5)
        assert s1.trace_length == s2.trace_length
        assert s1.steady.cycles == s2.steady.cycles

    def test_different_seeds_vary_memory_behaviour(self):
        exp = Experiment("tcpip", "STD")
        build = build_configured_program("tcpip", "STD", exp.opts)
        cycles = {exp.run_sample(build, seed=s).steady.cycles
                  for s in (1, 2, 3, 4, 5)}
        assert len(cycles) > 1  # the allocator jitter shows up in timing

    def test_run_aggregates_samples(self):
        result = Experiment("tcpip", "STD").run(samples=3)
        assert len(result.samples) == 3
        assert result.mean_rtt_us > 0
        assert result.stdev_rtt_us >= 0
        rep = result.representative()
        assert rep in result.samples

    def test_event_stream_is_consistent_across_configs(self):
        """One functional run's events walk under every configuration."""
        lengths = {}
        for config in ("STD", "OUT", "CLO", "PIN", "ALL"):
            e = Experiment("tcpip", config)
            build = build_configured_program("tcpip", config, e.opts)
            lengths[config] = e.run_sample(build, seed=9).trace_length
        # outlining/cloning do not change the instruction count much;
        # path-inlining shortens it
        assert lengths["OUT"] == lengths["STD"]
        assert lengths["PIN"] < lengths["STD"]
        assert lengths["ALL"] <= lengths["PIN"]

    def test_unknown_stack_rejected(self):
        with pytest.raises(ValueError):
            Experiment("osi", "STD")

    def test_rpc_experiment_runs(self):
        result = Experiment("rpc", "STD",
                            server_processing_us=44.0).run(samples=2)
        assert result.mean_rtt_us > CONTROLLER_ROUNDTRIP_US


class TestProcessingDecomposition:
    def test_cpi_is_icpi_plus_mcpi(self):
        exp = Experiment("tcpip", "STD")
        build = build_configured_program("tcpip", "STD", exp.opts)
        s = exp.run_sample(build, seed=3)
        assert s.steady.cpi == pytest.approx(
            s.steady.icpi + s.steady.mcpi, rel=1e-9
        )

    def test_cold_and_steady_use_same_trace(self):
        exp = Experiment("tcpip", "STD")
        build = build_configured_program("tcpip", "STD", exp.opts)
        s = exp.run_sample(build, seed=3)
        assert s.cold.instructions == s.steady.instructions

    def test_steady_state_is_warmer_than_cold(self):
        exp = Experiment("tcpip", "STD")
        build = build_configured_program("tcpip", "STD", exp.opts)
        s = exp.run_sample(build, seed=3)
        assert (s.steady.memory.icache.misses
                <= s.cold.memory.icache.misses)
