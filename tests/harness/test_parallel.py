"""Parallel sweeps, engine selection, and capture memoization."""

import pytest

from repro.harness.experiment import (
    Experiment,
    clear_capture_memo,
    resolve_engine,
    run_all_configs,
)
from repro.harness.parallel import run_parallel_sweep

SMALL = ("STD", "OUT")


def _sample_tuples(result):
    return [(s.roundtrip_us, s.cold, s.steady) for s in result.samples]


def test_parallel_sweep_reproduces_serial_sweep():
    try:
        par = run_parallel_sweep("tcpip", SMALL, samples=2, max_workers=2)
    except OSError as exc:                               # pragma: no cover
        pytest.skip(f"process pool unavailable: {exc}")
    ser = run_all_configs("tcpip", SMALL, samples=2, parallel=False)
    assert set(par) == set(ser) == set(SMALL)
    for config in SMALL:
        assert _sample_tuples(par[config]) == _sample_tuples(ser[config])
        # live event streams stay in the worker; everything else crosses
        assert all(s.events == [] for s in par[config].samples)
        assert par[config].samples[0].walk.length == \
            ser[config].samples[0].walk.length


def test_run_all_configs_parallel_flag_matches_serial():
    auto = run_all_configs("tcpip", SMALL, samples=2)
    ser = run_all_configs("tcpip", SMALL, samples=2, parallel=False)
    for config in SMALL:
        assert [s.roundtrip_us for s in auto[config].samples] == \
            [s.roundtrip_us for s in ser[config].samples]


def test_engines_agree_end_to_end():
    fast = Experiment("tcpip", "CLO", engine="fast").run(samples=2)
    ref = Experiment("tcpip", "CLO", engine="reference").run(samples=2)
    for f, r in zip(fast.samples, ref.samples):
        assert f.cold == r.cold
        assert f.steady == r.steady
        assert f.roundtrip_us == r.roundtrip_us


def test_resolve_engine_precedence(monkeypatch):
    assert resolve_engine() == "fast"
    monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
    assert resolve_engine() == "reference"
    assert resolve_engine("fast") == "fast"    # explicit beats environment
    with pytest.raises(ValueError):
        resolve_engine("warp")


def test_capture_memo_hands_out_independent_clones():
    clear_capture_memo()
    exp = Experiment("tcpip", "STD")
    events1, env1 = exp.capture_roundtrip(42)
    events2, env2 = exp.capture_roundtrip(42)
    assert env1 == env2
    assert events1 is not events2
    # list-valued conds are consumed in place by walks; clones must not
    # share them (nor the cond dicts themselves)
    for a, b in zip(events1, events2):
        conds_a = getattr(a, "conds", None)
        if conds_a is None:
            continue
        assert conds_a is not b.conds
        for key, value in conds_a.items():
            if isinstance(value, list):
                assert value is not b.conds[key]
    clear_capture_memo()


def test_memoization_can_be_disabled():
    clear_capture_memo()
    from repro.harness.experiment import _capture_memo

    exp = Experiment("tcpip", "STD", memoize_captures=False)
    events, _ = exp.capture_roundtrip(42)
    assert events
    assert not _capture_memo
    clear_capture_memo()
