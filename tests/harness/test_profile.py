"""Unit tests for the per-function profiler."""

import pytest

from repro.core.ir import FunctionBuilder
from repro.core.layout import link_order_layout
from repro.core.program import Program
from repro.core.walker import EnterEvent, ExitEvent, Walker
from repro.harness.profile import FunctionProfile, profile_trace


def _program():
    p = Program()
    for name, alu in (("hot", 120), ("cold", 12)):
        fb = FunctionBuilder(name, saves=1)
        fb.block("a").alu(alu)
        fb.ret()
        p.add(fb.build())
    p.layout(link_order_layout())
    return p


def _trace(p):
    events = [EnterEvent("hot"), ExitEvent("hot"),
              EnterEvent("cold"), ExitEvent("cold")]
    return Walker(p).walk(events).trace


class TestProfiler:
    def test_instruction_attribution_is_complete(self):
        p = _program()
        trace = _trace(p)
        report = profile_trace(trace, p)
        assert report.unattributed_instructions == 0
        assert (report.functions["hot"].instructions
                + report.functions["cold"].instructions) == len(trace)

    def test_bigger_function_gets_more_instructions(self):
        p = _program()
        report = profile_trace(_trace(p), p)
        assert (report.functions["hot"].instructions
                > report.functions["cold"].instructions)

    def test_top_orders_by_stalls(self):
        report = profile_trace(_trace(_p := _program()), _p)
        top = report.top(2)
        assert top[0].stall_cycles >= top[1].stall_cycles

    def test_render_contains_functions(self):
        p = _program()
        text = profile_trace(_trace(p), p).render()
        assert "hot" in text and "cold" in text

    def test_unknown_addresses_counted(self):
        from repro.arch.isa import Op, TraceEntry

        p = _program()
        stray = [TraceEntry(pc=0xDEAD0000, op=Op.ALU)]
        report = profile_trace(stray, p)
        assert report.unattributed_instructions == 1

    def test_mcpi_property(self):
        prof = FunctionProfile("f", instructions=100, stall_cycles=250)
        assert prof.mcpi == pytest.approx(2.5)
        assert FunctionProfile("g").mcpi == 0.0

    def test_warm_cache_profile_has_no_cold_misses(self):
        p = _program()
        trace = _trace(p)
        report = profile_trace(trace, p, warmup_rounds=3)
        # 530 bytes of code fit the i-cache: zero misses when warm
        assert all(f.icache_misses == 0 for f in report.functions.values())
