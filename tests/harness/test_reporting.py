"""Tests for the table renderers and the paper-constant module."""

import pytest

from repro.harness import paper
from repro.harness.reporting import (
    render_icache_footprint,
    render_table1,
    render_table2,
    render_table3,
    render_table9,
)


class TestPaperConstants:
    def test_table1_totals_consistent(self):
        assert sum(paper.TABLE1_SAVINGS.values()) == paper.TABLE1_TOTAL

    def test_table4_orderings(self):
        for table in (paper.TABLE4_TCPIP, paper.TABLE4_RPC):
            values = [table[c][0] for c in
                      ("BAD", "STD", "OUT", "CLO", "PIN", "ALL")]
            assert values == sorted(values, reverse=True)

    def test_table5_is_table4_minus_controller(self):
        for t4, t5 in ((paper.TABLE4_TCPIP, paper.TABLE5_TCPIP),
                       (paper.TABLE4_RPC, paper.TABLE5_RPC)):
            for config in t5:
                assert t5[config] == pytest.approx(t4[config][0] - 210.0,
                                                   abs=0.11)

    def test_table6_misses_not_exceeding_accesses(self):
        for table in (paper.TABLE6_TCPIP, paper.TABLE6_RPC):
            for config, caches in table.items():
                for miss, acc, repl in caches:
                    assert repl <= miss <= acc, config

    def test_headline_mcpi_ratios(self):
        t = paper.TABLE7_TCPIP
        assert t["BAD"]["mcpi"] / t["ALL"]["mcpi"] == pytest.approx(
            paper.MCPI_WORST_BEST_RATIO["tcpip"], rel=0.01
        )
        r = paper.TABLE7_RPC
        assert r["BAD"]["mcpi"] / r["ALL"]["mcpi"] == pytest.approx(
            paper.MCPI_WORST_BEST_RATIO["rpc"], rel=0.01
        )

    def test_outlined_fraction_matches_table9(self):
        for stack in ("tcpip", "rpc"):
            t = paper.TABLE9[stack]
            fraction = 1 - t["size_with"] / t["size_without"]
            assert fraction == pytest.approx(
                paper.OUTLINED_FRACTION[stack], abs=0.01
            )

    def test_controller_arithmetic(self):
        assert paper.LANCE_HANDOFF_US - paper.MIN_FRAME_US == pytest.approx(
            paper.LANCE_OVERHEAD_US, abs=0.5
        )


class TestRenderers:
    def test_table1_renders_all_rows(self):
        text = render_table1(dict.fromkeys(paper.TABLE1_SAVINGS, 100), 700)
        for label in paper.TABLE1_LABELS.values():
            assert label in text
        assert "700" in text

    def test_table2_renders(self):
        measured = {
            "original": {"rtt_us": 380.0, "instructions": 5700,
                         "cycles": 15000, "cpi": 2.6},
            "improved": {"rtt_us": 351.0, "instructions": 4600,
                         "cycles": 12000, "cpi": 2.6},
        }
        text = render_table2(measured)
        assert "Roundtrip latency" in text
        assert "351.0" in text

    def test_table3_renders_missing_cells_as_dash(self):
        text = render_table3({"ipintr": None, "tcp_input": None,
                              "ip_to_tcp": 440, "tcp_to_user": 1000})
        assert " - " in text or " -" in text
        assert "440" in text

    def test_table9_renders(self):
        measured = {
            "tcpip": {"unused_without": 0.17, "size_without": 7600,
                      "unused_with": 0.11, "size_with": 4500},
            "rpc": {"unused_without": 0.15, "size_without": 6400,
                    "unused_with": 0.12, "size_with": 4300},
        }
        text = render_table9(measured)
        assert "tcpip" in text and "rpc" in text

    def test_footprint_renderer(self):
        from repro.core.metrics import FootprintRow

        rows = [FootprintRow(name="f", base=0x100000, size_bytes=320,
                             first_index=4, blocks=10)]
        text = render_icache_footprint(rows)
        assert "f" in text
        assert "#" in text


class TestObservabilityRenderers:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.arch.fastsim import FastMachine
        from repro.core.walker import Walker
        from repro.harness.configs import build_configured_program_cached
        from repro.harness.experiment import Experiment
        from repro.obs import Attribution

        exp = Experiment("tcpip", "STD")
        events, data_env = exp.capture_roundtrip(42)
        build = build_configured_program_cached("tcpip", "STD")
        walk = Walker(build.program, data_env).walk(events)
        sink = Attribution(build.program)
        FastMachine(sink=sink).run_steady_state(walk.packed)
        return sink.harvest("steady")

    def test_layer_breakdown_lists_stack_layers(self, report):
        from repro.harness.reporting import render_layer_breakdown

        text = render_layer_breakdown(report, title="tcpip STD")
        for layer in ("tcp", "ip", "eth", "lance", "library"):
            assert f"\n{layer} " in text or text.startswith(f"{layer} ")
        assert "tcpip STD" in text
        assert f"{report.total_stall_cycles}" in text

    def test_function_breakdown_is_sorted_by_stalls(self, report):
        from repro.harness.reporting import render_function_breakdown

        text = render_function_breakdown(report, top=5)
        rows = text.splitlines()[3:]
        stalls = [int(row.split()[3]) for row in rows]
        assert stalls == sorted(stalls, reverse=True)

    def test_conflict_matrix_render(self, report):
        from repro.harness.reporting import render_conflict_matrix

        text = render_conflict_matrix(report.conflicts, top=5)
        assert "who evicts whom" in text
        assert "total evictions" in text

    def test_empty_conflict_matrix_renders(self):
        from repro.harness.reporting import render_conflict_matrix
        from repro.obs import ConflictMatrix

        assert "(no evictions recorded)" in render_conflict_matrix(
            ConflictMatrix()
        )
