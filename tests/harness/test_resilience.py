"""Self-healing sweep machinery under injected chaos.

Every test drives the real process-pool executor through REPRO_CHAOS
sabotage and checks the one invariant that matters: whatever crashed,
hung or lied along the way, the sweep's results are bit-identical to the
plain serial loop, and every incident is on the report.
"""

import pytest

from repro.faults.plan import FaultPlan
from repro.harness.experiment import Experiment, run_all_configs
from repro.harness.parallel import SweepError, SweepReport, run_parallel_sweep

SMALL = ("STD", "OUT")


def _tuples(results):
    return {
        config: [(s.roundtrip_us, s.cold, s.steady) for s in result.samples]
        for config, result in results.items()
    }


def _parallel(report=None, **kwargs):
    kwargs.setdefault("samples", 2)
    kwargs.setdefault("max_workers", 2)
    try:
        return run_parallel_sweep("tcpip", SMALL, report=report, **kwargs)
    except OSError as exc:  # pragma: no cover
        pytest.skip(f"process pool unavailable: {exc}")


@pytest.fixture()
def serial_baseline():
    # run serially first: fork-based workers then inherit the warm
    # capture/build caches copy-on-write
    return _tuples(run_all_configs("tcpip", SMALL, samples=2, parallel=False))


def test_crashing_worker_is_retried_bit_identically(serial_baseline, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "crash:STD:42:1")
    report = SweepReport()
    par = _parallel(report, retries=2)
    assert _tuples(par) == serial_baseline
    crash = [i for i in report.incidents if i.kind == "crash"]
    assert crash and crash[0].config == "STD" and crash[0].seed == 42
    assert report.completed == 4
    assert report.completed_serial == 0
    assert report.ok()


def test_hanging_worker_is_timed_out_and_redispatched(serial_baseline, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "hang:STD:59:1:60")
    report = SweepReport()
    par = _parallel(report, retries=2, cell_timeout=8.0)
    assert _tuples(par) == serial_baseline
    assert report.pools_restarted >= 1
    assert any(i.kind == "timeout" for i in report.incidents)
    assert report.ok()


def test_exhausted_retries_heal_serially(serial_baseline, monkeypatch):
    # every pool attempt of the cell is sabotaged; the in-process serial
    # fallback is immune by design and completes the sweep
    monkeypatch.setenv("REPRO_CHAOS", "crash:STD:42:99")
    report = SweepReport()
    par = _parallel(report, retries=1)
    assert _tuples(par) == serial_baseline
    assert report.completed_serial == 1
    assert report.retried >= 2
    assert report.ok()


def test_crash_and_hang_in_one_sweep_both_land_on_the_report(
    serial_baseline, monkeypatch
):
    # the acceptance scenario: one cell crashes, another hangs, and the
    # sweep still completes with both incidents recorded
    monkeypatch.setenv("REPRO_CHAOS", "crash:OUT:42:1;hang:STD:59:1:60")
    report = SweepReport()
    par = _parallel(report, retries=2, cell_timeout=8.0)
    assert _tuples(par) == serial_baseline
    kinds = {i.kind for i in report.incidents}
    assert "crash" in kinds and "timeout" in kinds
    assert report.ok()


def test_no_fallback_fails_loudly_naming_the_cell(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "crash:STD:42:99")
    report = SweepReport()
    with pytest.raises(SweepError) as excinfo:
        _parallel(report, retries=0, serial_fallback=False)
    message = str(excinfo.value)
    assert "STD" in message and "42" in message
    assert excinfo.value.report is report
    assert not report.ok()


def test_sweep_cannot_silently_lose_samples(serial_baseline):
    # regression for the old `if s is not None` filter: a clean sweep
    # returns every slot filled, in seed order
    report = SweepReport()
    par = _parallel(report)
    for config in SMALL:
        assert len(par[config].samples) == 2
        assert all(s is not None for s in par[config].samples)
    assert report.completed == 4
    assert _tuples(par) == serial_baseline


def test_faulted_sweep_is_parallel_serial_identical():
    plan = FaultPlan(stack="tcpip", rate=0.5, seed=7)
    ser = run_all_configs("tcpip", SMALL, samples=2, parallel=False, fault_plan=plan)
    report = SweepReport()
    par = _parallel(report, fault_plan=plan)
    assert _tuples(par) == _tuples(ser)
    for config in SMALL:
        par_counts = [len(s.faults) for s in par[config].samples]
        ser_counts = [len(s.faults) for s in ser[config].samples]
        assert par_counts == ser_counts
    assert sum(r.total_faults for r in par.values()) > 0


def test_guarded_divergence_detected_in_serial_run(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "perturb:CLO:42:1")
    exp = Experiment("tcpip", "CLO", engine="guarded")
    result = exp.run(samples=2)
    assert len(exp.divergences) == 1
    report = exp.divergences[0]
    assert report.config == "CLO" and report.seed == 42
    assert any(m[0] == "steady.stall_cycles" for m in report.mismatches)
    # after the fallback the results are the reference engine's
    ref = Experiment("tcpip", "CLO", engine="reference").run(samples=2)
    for g, r in zip(result.samples, ref.samples):
        assert g.steady == r.steady
        assert g.cold == r.cold


def test_guarded_divergence_can_raise(monkeypatch):
    from repro.faults.guard import EngineDivergence

    monkeypatch.setenv("REPRO_CHAOS", "perturb:CLO:42:1")
    exp = Experiment("tcpip", "CLO", engine="guarded", on_divergence="raise")
    with pytest.raises(EngineDivergence):
        exp.run(samples=1)


def test_guarded_divergence_detected_in_parallel_sweep(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "perturb:CLO:42:1")
    report = SweepReport()
    try:
        par = run_parallel_sweep(
            "tcpip", ("CLO",), samples=2, max_workers=2, engine="guarded", report=report
        )
    except OSError as exc:  # pragma: no cover
        pytest.skip(f"process pool unavailable: {exc}")
    assert len(report.divergences) == 1
    assert report.divergences[0].config == "CLO"
    ref = run_all_configs(
        "tcpip", ("CLO",), samples=2, parallel=False, engine="reference"
    )
    assert _tuples(par) == _tuples(ref)


def test_clean_guarded_sweep_matches_fast_engine():
    guarded = run_all_configs(
        "tcpip", SMALL, samples=2, parallel=False, engine="guarded"
    )
    fast = run_all_configs("tcpip", SMALL, samples=2, parallel=False, engine="fast")
    assert _tuples(guarded) == _tuples(fast)


def test_run_all_configs_report_plumbing():
    report = SweepReport()
    results = run_all_configs("tcpip", SMALL, samples=2, parallel=False, report=report)
    assert set(results) == set(SMALL)
    assert report.completed == 4
    assert report.completed_serial == 4
