"""Tests for the table-computation layer (fast variants of the benches)."""

import pytest

from repro.harness.tables import (
    TABLE8_TRANSITIONS,
    compute_table1,
    compute_table3,
    compute_table8,
    compute_table9,
)


@pytest.fixture(scope="module")
def mini_sweep():
    from repro.harness.experiment import run_all_configs

    return run_all_configs("tcpip", samples=1)


class TestTable1:
    def test_all_flags_measured(self):
        savings, total = compute_table1()
        from repro.protocols.options import Section2Options

        assert set(savings) == set(Section2Options.TABLE1_FLAGS)
        assert all(v > 0 for v in savings.values())
        # toggles compose: the sum of individual savings approximates the
        # original->improved delta (small interactions allowed)
        assert total == pytest.approx(sum(savings.values()), rel=0.1)


class TestTable3:
    def test_regions_are_ordered_subsets_of_the_trace(self):
        measured = compute_table3()
        assert measured["ip_to_tcp"] > 0
        assert measured["tcp_to_user"] > measured["ip_to_tcp"]

    def test_function_local_counts_declined(self):
        measured = compute_table3()
        assert measured["ipintr"] is None
        assert measured["tcp_input"] is None


class TestTable8:
    def test_all_transitions_present(self, mini_sweep):
        rows = compute_table8(mini_sweep)
        assert set(rows) == set(TABLE8_TRANSITIONS)
        for row in rows.values():
            assert set(row) == {"i_pct", "d_te", "d_tp", "d_nb", "d_nm"}

    def test_bad_to_clo_dominates(self, mini_sweep):
        rows = compute_table8(mini_sweep)
        big = rows[("BAD", "CLO")]
        for key in (("STD", "OUT"), ("OUT", "CLO")):
            assert big["d_te"] > rows[key]["d_te"]
            assert big["d_tp"] > rows[key]["d_tp"]


class TestTable9:
    def test_both_stacks_measured(self):
        measured = compute_table9()
        for stack in ("tcpip", "rpc"):
            m = measured[stack]
            assert 0 < m["unused_with"] < m["unused_without"] < 0.5
            assert m["size_with"] < m["size_without"]


class TestSweepAggregates:
    def test_all_configs_present(self, mini_sweep):
        assert set(mini_sweep) == {"BAD", "STD", "OUT", "CLO", "PIN", "ALL"}

    def test_each_result_is_complete(self, mini_sweep):
        for config, result in mini_sweep.items():
            assert result.samples, config
            s = result.samples[0]
            assert s.cold.instructions == s.trace_length
            assert s.roundtrip_us > 200.0  # at least the controller share
