"""Unit and property tests for sparse memory and the USC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.usc import (
    FieldSpec,
    SparseLayout,
    SparseMemory,
    SparseMemoryError,
    UscCompiler,
)


class TestSparseLayout:
    def test_descriptor_layout_mapping(self):
        lay = SparseLayout(2, 2)  # 16-bit words, 16-bit gaps
        assert [lay.physical(i) for i in range(6)] == [0, 1, 4, 5, 8, 9]

    def test_buffer_layout_mapping(self):
        lay = SparseLayout(16, 16)
        assert lay.physical(15) == 15
        assert lay.physical(16) == 32

    def test_descriptor_span_is_double(self):
        lay = SparseLayout(2, 2)
        # a 10-byte descriptor spans 5 words + gaps: the paper's 20 bytes
        assert lay.physical_span(0, 10) == 18  # last gap not included
        # dense-copy traffic: read 10 + write 10 logical bytes, but the
        # bus moves whole words; the driver model counts logical bytes

    def test_invalid_layouts_rejected(self):
        with pytest.raises(SparseMemoryError):
            SparseLayout(0, 2)
        with pytest.raises(SparseMemoryError):
            SparseLayout(2, -1)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_physical_is_monotonic_and_gap_free_in_valid_lanes(self, offset):
        lay = SparseLayout(2, 2)
        phys = lay.physical(offset)
        assert phys >= offset
        assert (phys % lay.stride) < lay.valid  # lands in a valid lane

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=1, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_physical_strictly_increasing(self, valid, gap, a, b):
        lay = SparseLayout(valid, gap)
        if a < b:
            assert lay.physical(a) < lay.physical(b)


class TestSparseMemory:
    def test_write_read_roundtrip(self):
        mem = SparseMemory(SparseLayout(2, 2), 64)
        mem.write(3, b"hello")
        assert mem.read(3, 5) == b"hello"

    def test_gaps_do_not_alias(self):
        mem = SparseMemory(SparseLayout(2, 2), 64)
        mem.write(0, bytes(range(16)))
        assert mem.read(0, 16) == bytes(range(16))

    def test_out_of_bounds_rejected(self):
        mem = SparseMemory(SparseLayout(2, 2), 16)
        with pytest.raises(SparseMemoryError):
            mem.read(10, 8)

    def test_traffic_accounting(self):
        mem = SparseMemory(SparseLayout(2, 2), 64)
        mem.write(0, b"1234")
        mem.read(0, 4)
        assert mem.physical_bytes_touched == 8

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=1, max_size=40), st.integers(min_value=0, max_value=20))
    def test_roundtrip_any_offset(self, data, offset):
        mem = SparseMemory(SparseLayout(16, 16), 128)
        if offset + len(data) <= 128:
            mem.write(offset, data)
            assert mem.read(offset, len(data)) == data


class TestUscCompiler:
    FIELDS = [
        FieldSpec("addr", 0, 4),
        FieldSpec("length", 4, 2),
        FieldSpec("status", 6, 2),
    ]

    def test_field_accessors_roundtrip(self):
        usc = UscCompiler(SparseLayout(2, 2))
        acc = usc.compile(self.FIELDS)
        mem = SparseMemory(SparseLayout(2, 2), 64)
        acc["addr"].write(mem, 0xDEADBEEF)
        acc["length"].write(mem, 1234)
        assert acc["addr"].read(mem) == 0xDEADBEEF
        assert acc["length"].read(mem) == 1234

    def test_accessors_with_record_base(self):
        usc = UscCompiler(SparseLayout(2, 2))
        acc = usc.compile(self.FIELDS)
        mem = SparseMemory(SparseLayout(2, 2), 64)
        acc["status"].write(mem, 7, base=10)  # second descriptor
        assert acc["status"].read(mem, base=10) == 7
        assert acc["status"].read(mem, base=0) == 0

    def test_direct_update_touches_fewer_bytes_than_dense_copy(self):
        """The whole point of USC in this paper: a field update should cost
        its width, not a 10-byte read + 10-byte write."""
        usc = UscCompiler(SparseLayout(2, 2))
        acc = usc.compile(self.FIELDS)
        mem = SparseMemory(SparseLayout(2, 2), 64)
        acc["status"].write(mem, 1)
        direct = mem.physical_bytes_touched
        mem2 = SparseMemory(SparseLayout(2, 2), 64)
        staged = bytearray(mem2.read(0, 10))
        staged[6:8] = (1).to_bytes(2, "little")
        mem2.write(0, bytes(staged))
        dense = mem2.physical_bytes_touched
        assert direct == 2
        assert dense == 20
        assert dense / direct == 10

    def test_duplicate_field_rejected(self):
        usc = UscCompiler(SparseLayout(2, 2))
        with pytest.raises(SparseMemoryError):
            usc.compile([FieldSpec("a", 0, 2), FieldSpec("a", 2, 2)])

    def test_overlapping_fields_rejected(self):
        usc = UscCompiler(SparseLayout(2, 2))
        with pytest.raises(SparseMemoryError):
            usc.compile([FieldSpec("a", 0, 4), FieldSpec("b", 2, 2)])

    def test_physical_offsets_documented(self):
        usc = UscCompiler(SparseLayout(2, 2))
        acc = usc.compile([FieldSpec("length", 4, 2)])["length"]
        assert acc.physical_offsets == (8, 9)
