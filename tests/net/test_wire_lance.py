"""Unit tests for the wire and LANCE adaptor models."""

import pytest

from repro.net.lance import (
    DescriptorUpdateMode,
    LanceAdaptor,
    STATUS_OWN,
)
from repro.net.wire import EthernetWire, Frame, WireError, WireTiming
from repro.xkernel.event import EventManager
from repro.xkernel.protocol import ProtocolStack

MAC_A = bytes.fromhex("08002b000001")
MAC_B = bytes.fromhex("08002b000002")


class TestWireTiming:
    def test_minimum_frame_is_57_6_us(self):
        t = WireTiming()
        assert t.transmission_us(64) == pytest.approx(57.6)

    def test_short_frames_padded(self):
        t = WireTiming()
        assert t.transmission_us(20) == t.transmission_us(64)

    def test_large_frame_scales(self):
        t = WireTiming()
        assert t.transmission_us(1518) == pytest.approx((1518 + 8) * 0.8)


class TestFrame:
    def test_serialize_parse_roundtrip(self):
        f = Frame(MAC_A, MAC_B, 0x0800, b"data")
        assert Frame.parse(f.serialize()) == f

    def test_wire_bytes_has_minimum(self):
        f = Frame(MAC_A, MAC_B, 0x0800, b"x")
        assert f.wire_bytes == 64

    def test_bad_mac_rejected(self):
        with pytest.raises(WireError):
            Frame(b"xx", MAC_B, 0x0800, b"")

    def test_oversized_payload_rejected(self):
        with pytest.raises(WireError):
            Frame(MAC_A, MAC_B, 0x0800, bytes(1600))


class TestEthernetWire:
    def _wire(self):
        events = EventManager()
        return events, EthernetWire(events)

    def test_delivers_to_destination(self):
        events, wire = self._wire()
        got = []
        wire.attach(MAC_A, got.append)
        wire.attach(MAC_B, lambda f: pytest.fail("wrong station"))
        wire.transmit(Frame(MAC_A, MAC_B, 0x0800, b"hi"))
        events.advance(1000)
        assert len(got) == 1
        assert got[0].payload == b"hi"

    def test_delivery_is_delayed_by_transmission_time(self):
        events, wire = self._wire()
        arrival = []
        wire.attach(MAC_A, lambda f: arrival.append(events.now_us))
        wire.transmit(Frame(MAC_A, MAC_B, 0x0800, b""))
        events.advance(1000)
        assert arrival[0] >= 57.6

    def test_broadcast_reaches_all_but_sender(self):
        events, wire = self._wire()
        got = []
        wire.attach(MAC_A, lambda f: got.append("a"))
        wire.attach(MAC_B, lambda f: got.append("b"))
        wire.transmit(Frame(EthernetWire.BROADCAST, MAC_B, 0x0806, b""))
        events.advance(1000)
        assert got == ["a"]

    def test_unknown_destination_dropped(self):
        events, wire = self._wire()
        wire.transmit(Frame(MAC_A, MAC_B, 0x0800, b""))
        events.advance(1000)
        assert wire.drops == 1

    def test_duplicate_attach_rejected(self):
        _, wire = self._wire()
        wire.attach(MAC_A, lambda f: None)
        with pytest.raises(WireError):
            wire.attach(MAC_A, lambda f: None)


def make_pair(mode=DescriptorUpdateMode.USC_DIRECT):
    events = EventManager()
    wire = EthernetWire(events)
    stack_a = ProtocolStack("a", events=events)
    stack_b = ProtocolStack("b", events=events)
    la = LanceAdaptor(stack_a, wire, MAC_A, mode=mode)
    lb = LanceAdaptor(stack_b, wire, MAC_B, mode=mode)
    return events, la, lb


class TestLanceAdaptor:
    def test_frame_reaches_peer_rx_handler(self):
        events, la, lb = make_pair()
        got = []
        lb.rx_handler = got.append
        la.rx_handler = lambda f: None
        la.transmit(Frame(MAC_B, MAC_A, 0x0800, b"ping"))
        events.advance(1000)
        assert len(got) == 1
        assert got[0].payload == b"ping"

    def test_one_way_latency_matches_paper(self):
        """Handoff -> rx interrupt should be ~105 µs for a minimum frame."""
        events, la, lb = make_pair()
        seen = []
        lb.rx_handler = lambda f: seen.append(events.now_us)
        la.transmit(Frame(MAC_B, MAC_A, 0x0800, b""))
        events.advance(1000)
        assert seen[0] == pytest.approx(105.2, abs=1.0)

    def test_tx_complete_interrupt_at_105us(self):
        events, la, lb = make_pair()
        lb.rx_handler = lambda f: None
        done = []
        la.tx_done_handler = lambda: done.append(events.now_us)
        la.transmit(Frame(MAC_B, MAC_A, 0x0800, b""))
        events.advance(1000)
        assert done[0] == pytest.approx(105.0)

    def test_descriptor_written_with_own_bit(self):
        events, la, lb = make_pair()
        lb.rx_handler = lambda f: None
        la.transmit(Frame(MAC_B, MAC_A, 0x0800, b"z"))
        assert la.read_descriptor_field("tx", 0, "status") == STATUS_OWN
        events.advance(1000)
        # transmit-complete cleared ownership
        assert la.read_descriptor_field("tx", 0, "status") == 0

    def test_usc_mode_generates_less_descriptor_traffic(self):
        results = {}
        for mode in DescriptorUpdateMode:
            events, la, lb = make_pair(mode)
            lb.rx_handler = lambda f: None
            for _ in range(5):
                la.transmit(Frame(MAC_B, MAC_A, 0x0800, b"x"))
                events.advance(500)
            results[mode] = la.tx_ring.descriptors.physical_bytes_touched
        assert results[DescriptorUpdateMode.USC_DIRECT] < results[
            DescriptorUpdateMode.DENSE_COPY
        ]

    def test_ring_wraps(self):
        events, la, lb = make_pair()
        lb.rx_handler = lambda f: None
        for _ in range(20):  # more than RING_SIZE
            la.transmit(Frame(MAC_B, MAC_A, 0x0800, b"x"))
            events.advance(500)
        assert la.frames_sent == 20

    def test_wrong_source_mac_rejected(self):
        from repro.net.lance import LanceError

        _, la, _ = make_pair()
        with pytest.raises(LanceError):
            la.transmit(Frame(MAC_A, MAC_B, 0x0800, b""))
