"""Property-based tests on the wire and frame models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.wire import (
    MIN_FRAME_BYTES,
    EthernetWire,
    Frame,
    WireTiming,
)
from repro.xkernel.event import EventManager

MACS = st.binary(min_size=6, max_size=6)


class TestFrameProperties:
    @settings(max_examples=80, deadline=None)
    @given(MACS, MACS, st.integers(min_value=0, max_value=0xFFFF),
           st.binary(max_size=1500))
    def test_serialize_parse_roundtrip(self, dst, src, ethertype, payload):
        frame = Frame(dst, src, ethertype, payload)
        assert Frame.parse(frame.serialize()) == frame

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=1500))
    def test_wire_bytes_lower_bound(self, payload):
        frame = Frame(b"\x01" * 6, b"\x02" * 6, 0x0800, payload)
        assert frame.wire_bytes >= MIN_FRAME_BYTES
        assert frame.wire_bytes >= len(payload)


class TestTimingProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=1518),
           st.integers(min_value=0, max_value=1518))
    def test_transmission_time_monotone(self, a, b):
        t = WireTiming()
        if a <= b:
            assert t.transmission_us(a) <= t.transmission_us(b)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=64, max_value=1518))
    def test_transmission_time_matches_bitrate(self, size):
        t = WireTiming()
        expected = (size + 8) * 8 / 10.0  # bits / Mbps = µs
        assert t.transmission_us(size) == pytest.approx(expected)


class TestWireOrdering:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=100), min_size=1,
                    max_size=10))
    def test_frames_delivered_in_transmit_order(self, payloads):
        events = EventManager()
        wire = EthernetWire(events)
        received = []
        wire.attach(b"\x0a" * 6, lambda f: received.append(f.payload))
        base = events.now_us
        for i, payload in enumerate(payloads):
            # transmissions are spaced out as a real sender would be
            events.advance_to(base + 2000.0 * i)
            wire.transmit(Frame(b"\x0a" * 6, b"\x0b" * 6, 0x0800, payload))
        events.advance(1_000_000)
        assert received == payloads

    def test_stats_accumulate(self):
        events = EventManager()
        wire = EthernetWire(events)
        wire.attach(b"\x0a" * 6, lambda f: None)
        for _ in range(3):
            wire.transmit(Frame(b"\x0a" * 6, b"\x0b" * 6, 0x0800, b"x"))
        assert wire.frames_carried == 3
        assert wire.bytes_carried == 3 * 64
