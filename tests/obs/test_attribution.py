"""The observability layer's core contract.

The attribution invariant: for every (stack, config) cell of the Table-4
sweep, the sum of attributed stall cycles equals the engine's reported
stall total *exactly*, on both engines, cold and steady.  On top of that:
the two engines produce identical bucket decompositions, an attached sink
never changes the simulated numbers, reports aggregate consistently, and
the JSON form round-trips.
"""

import pytest

from repro.arch.fastsim import FastMachine
from repro.arch.simulator import MachineSimulator
from repro.core.walker import Walker
from repro.harness.configs import CONFIG_NAMES, build_configured_program_cached
from repro.harness.experiment import Experiment
from repro.harness.profile import profile_cell
from repro.obs import (
    Attribution,
    AttributionMismatch,
    AttributionReport,
    ConflictMatrix,
    layer_of,
    static_overlap,
)

CELLS = [(stack, config) for stack in ("tcpip", "rpc") for config in CONFIG_NAMES]


@pytest.fixture(scope="module")
def walks():
    """One real walked roundtrip per (stack, config) cell."""
    out = {}
    for stack, config in CELLS:
        exp = Experiment(stack, config)
        events, data_env = exp.capture_roundtrip(42)
        build = build_configured_program_cached(stack, config)
        out[(stack, config)] = (
            build,
            Walker(build.program, data_env).walk(events),
        )
    return out


def _attributed_run(machine, trace, sink):
    """cold report, steady report, cold result, steady result."""
    cold_result = machine.run(trace)
    cold = sink.harvest("cold")
    machine.warm_up(trace)
    steady_result = machine.run(trace)
    steady = sink.harvest("steady")
    return cold, steady, cold_result, steady_result


@pytest.mark.parametrize("stack,config", CELLS)
def test_invariant_fast_engine(walks, stack, config):
    build, walk = walks[(stack, config)]
    sink = Attribution(build.program)
    cold, steady, cold_result, steady_result = _attributed_run(
        FastMachine(sink=sink), walk.packed, sink
    )
    # the machines verify each measured pass; re-check the harvested sums
    cold.verify_total(cold_result.memory.stall_cycles)
    steady.verify_total(steady_result.memory.stall_cycles)
    assert cold.total_stall_cycles > 0
    assert steady.total_instructions == len(walk.packed)


@pytest.mark.parametrize("stack,config", CELLS)
def test_invariant_reference_engine(walks, stack, config):
    build, walk = walks[(stack, config)]
    sink = Attribution(build.program)
    cold, steady, cold_result, steady_result = _attributed_run(
        MachineSimulator(sink=sink), walk.trace, sink
    )
    cold.verify_total(cold_result.memory.stall_cycles)
    steady.verify_total(steady_result.memory.stall_cycles)


@pytest.mark.parametrize("stack", ["tcpip", "rpc"])
def test_engines_attribute_identically(walks, stack):
    """Both engines replay the same decisions, so the full bucket
    decomposition — not just the totals — must agree."""
    build, walk = walks[(stack, "STD")]
    fast_sink = Attribution(build.program)
    ref_sink = Attribution(build.program)
    f_cold, f_steady, _, _ = _attributed_run(
        FastMachine(sink=fast_sink), walk.packed, fast_sink
    )
    r_cold, r_steady, _, _ = _attributed_run(
        MachineSimulator(sink=ref_sink), walk.trace, ref_sink
    )
    assert f_cold.buckets == r_cold.buckets
    assert f_steady.buckets == r_steady.buckets
    assert f_steady.conflicts.counts == r_steady.conflicts.counts


@pytest.mark.parametrize("stack", ["tcpip", "rpc"])
def test_sink_does_not_change_results(walks, stack):
    build, walk = walks[(stack, "ALL")]
    sink = Attribution(build.program)
    plain = FastMachine()
    observed = FastMachine(sink=sink)
    assert observed.run(walk.packed) == plain.run(walk.packed)
    plain.warm_up(walk.packed)
    observed.warm_up(walk.packed)
    assert observed.run(walk.packed) == plain.run(walk.packed)


def test_cold_pass_contains_cold_misses(walks):
    """The first pass of a fresh hierarchy sees every block's first touch
    (plus any same-pass re-misses, which classify as conflict/capacity)."""
    build, walk = walks[("tcpip", "STD")]
    sink = Attribution(build.program)
    FastMachine(sink=sink).run(walk.packed)
    cold = sink.harvest("cold")
    cold_cycles = sum(
        b.stall_cycles
        for (_l, _f, _c, kind), b in cold.buckets.items()
        if kind == "cold"
    )
    assert cold_cycles > 0
    # first touches dominate a cold pass
    assert cold_cycles > cold.total_stall_cycles / 2


def test_steady_pass_has_no_cold_misses(walks):
    build, walk = walks[("tcpip", "STD")]
    sink = Attribution(build.program)
    machine = FastMachine(sink=sink)
    machine.run(walk.packed)
    sink.harvest("cold")
    machine.warm_up(walk.packed)
    machine.run(walk.packed)
    steady = sink.harvest("steady")
    assert not any(kind == "cold" for (_l, _f, _c, kind) in steady.buckets)


def test_aggregations_are_consistent(walks):
    build, walk = walks[("rpc", "STD")]
    sink = Attribution(build.program)
    machine = FastMachine(sink=sink)
    machine.run_steady_state(walk.packed)
    report = sink.harvest("steady")
    total = report.total_stall_cycles
    assert sum(r["stall_cycles"] for r in report.by_layer().values()) == total
    assert sum(r["stall_cycles"] for r in report.by_function().values()) == total
    assert sum(report.by_cache().values()) == total
    assert sum(report.instructions.values()) == report.total_instructions


def test_desynced_sink_raises_mismatch(walks):
    """A sink whose replica state diverges from the machine's is detected
    at the next measured run — the invariant is enforced, not assumed."""
    build, walk = walks[("tcpip", "STD")]
    sink = Attribution(build.program)
    machine = FastMachine(sink=sink)
    machine.run(walk.packed)
    sink.reset_state()  # replica now cold while the machine is warm
    with pytest.raises(AttributionMismatch):
        machine.run(walk.packed)


def test_report_json_roundtrip(walks):
    build, walk = walks[("rpc", "ALL")]
    sink = Attribution(build.program)
    machine = FastMachine(sink=sink)
    machine.run_steady_state(walk.packed)
    report = sink.harvest("steady")
    back = AttributionReport.from_json(report.to_json())
    assert back.buckets == report.buckets
    assert back.instructions == report.instructions
    assert back.total_stall_cycles == report.total_stall_cycles
    assert back.conflicts.counts == report.conflicts.counts
    assert back.conflicts.sets == report.conflicts.sets


def test_profile_cell_matches_experiment(walks):
    """The harness-level entry point reproduces the unprofiled numbers."""
    cell = profile_cell("tcpip", "STD", engine="fast")
    exp = Experiment("tcpip", "STD", engine="fast")
    build = build_configured_program_cached("tcpip", "STD", exp.opts)
    sample = exp.run_sample(build, seed=42)
    assert cell.steady_result.memory.stall_cycles == sample.steady.memory.stall_cycles
    assert cell.cold_result.memory.stall_cycles == sample.cold.memory.stall_cycles
    assert cell.invocations  # the traced roundtrip entered functions


class TestLayerMapping:
    def test_prefixes(self):
        assert layer_of("tcp_push") == "tcp"
        assert layer_of("ip_demux") == "ip"
        assert layer_of("lance_transmit") == "lance"
        assert layer_of("vchan_call") == "vchan"
        assert layer_of("chan_resume") == "chan"

    def test_app_before_tcp(self):
        assert layer_of("tcptest_call") == "app"
        assert layer_of("xrpctest_call") == "app"

    def test_clones_attribute_to_original_layer(self):
        assert layer_of("tcp_push@clone") == "tcp"
        assert layer_of("in_cksum@clone") == "library"

    def test_library(self):
        assert layer_of("in_cksum") == "library"
        assert layer_of("bcopy") == "library"

    def test_merged_paths(self):
        assert layer_of("tcpip_output_path") == "path"
        assert layer_of("rpc_input_path") == "path"

    def test_unknown(self):
        assert layer_of("(unattributed)") == "(unknown)"
        assert layer_of("tcpdump") == "(unknown)"  # no '_' boundary match


class TestConflictMatrix:
    def test_record_and_top_pairs(self):
        m = ConflictMatrix()
        m.record("a", "b", 3)
        m.record("a", "b", 4)
        m.record("b", "a", 3)
        m.record("c", "c", 9)
        assert m.total_evictions == 4
        assert m.self_evictions() == 1
        top = m.top_pairs(1)
        assert top == [("a", "b", 2, 2)]

    def test_json_roundtrip(self):
        m = ConflictMatrix()
        m.record("x", "y", 1)
        m.record("x", "y", 2)
        back = ConflictMatrix.from_json(m.to_json())
        assert back.counts == m.counts
        assert back.sets == m.sets

    def test_static_overlap_flags_aliasing_pairs(self, walks):
        build, _walk = walks[("tcpip", "BAD")]
        overlaps = static_overlap(build.program)
        # the pessimal layout aliases hot functions on purpose
        assert overlaps
        for (a, b), shared in overlaps.items():
            assert a < b
            assert shared > 0

    def test_dynamic_conflicts_imply_static_overlap(self, walks):
        """Every dynamically observed eviction pair must also alias
        statically (distinct functions cannot fight over a set their
        extents do not share)."""
        build, walk = walks[("tcpip", "BAD")]
        sink = Attribution(build.program)
        machine = FastMachine(sink=sink)
        machine.run_steady_state(walk.packed)
        report = sink.harvest("steady")
        overlaps = static_overlap(build.program)
        for evictor, victim in report.conflicts.counts:
            if evictor == victim:
                continue
            if "(unattributed)" in (evictor, victim):
                continue
            key = tuple(sorted((evictor, victim)))
            assert key in overlaps, (evictor, victim)
