"""Functional tests for the ETH driver and the VNET virtual protocol."""

import struct

import pytest

from repro.protocols.eth import ETHERTYPE_IP, ETHERTYPE_RPC
from repro.protocols.options import Section2Options
from repro.protocols.stacks import build_tcpip_network, establish
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


class _Sink(Protocol):
    def __init__(self, stack, name="sink"):
        super().__init__(stack, name)
        self.received = []

    def demux(self, msg, **kwargs):
        self.received.append((msg.bytes(), kwargs))


@pytest.fixture
def net():
    network = build_tcpip_network()
    establish(network)
    network.events.advance(500)
    network.client.stack.scheduler.run_pending()
    network.server.stack.scheduler.run_pending()
    return network


class TestEthDemux:
    def test_dispatch_by_ethertype(self, net):
        sink = _Sink(net.server.stack)
        net.server.eth.open_enable(sink, ETHERTYPE_RPC)
        session = net.client.eth.open(
            None, (net.server.adaptor.mac, ETHERTYPE_RPC)
        )
        msg = Message(net.client.stack.allocator, b"custom-payload")
        net.client.eth.push(session, msg)
        net.run_until(lambda: sink.received, 10_000)
        payload, kwargs = sink.received[0]
        assert payload.startswith(b"custom-payload")
        assert kwargs["src_mac"] == net.client.adaptor.mac
        msg.destroy()

    def test_unbound_ethertype_dropped(self, net):
        session = net.client.eth.open(None, (net.server.adaptor.mac, 0x9999))
        before = net.server.eth.delivered
        msg = Message(net.client.stack.allocator, b"x")
        net.client.eth.push(session, msg)
        net.events.advance(2000)
        net.server.stack.scheduler.run_pending()
        assert net.server.eth.delivered == before
        msg.destroy()

    def test_message_refreshed_after_delivery(self, net):
        pool = net.server.stack.msg_pool
        before = pool.refreshes
        net.client.app.run_pingpong(2)
        net.run_until(lambda: net.client.app.replies >= 2)
        assert pool.refreshes >= before + 2

    def test_refresh_short_circuits_in_steady_state(self, net):
        pool = net.server.stack.msg_pool
        net.client.app.run_pingpong(3)
        net.run_until(lambda: net.client.app.replies >= 3)
        assert pool.short_circuited > 0


class TestEthFraming:
    def test_header_is_14_bytes(self, net):
        frames = []
        original = net.wire.transmit
        net.wire.transmit = lambda f: (frames.append(f), original(f))[1]
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1)
        raw = frames[0].serialize()
        assert raw[:6] == net.server.adaptor.mac
        assert raw[6:12] == net.client.adaptor.mac
        assert struct.unpack("!H", raw[12:14])[0] == ETHERTYPE_IP

    def test_min_frame_on_wire(self, net):
        frames = []
        original = net.wire.transmit
        net.wire.transmit = lambda f: (frames.append(f), original(f))[1]
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1)
        assert all(f.wire_bytes >= 64 for f in frames)


class TestVnet:
    def test_vnet_routes_to_adaptor(self, net):
        """VNET sessions chain down to an ETH session for the adaptor."""
        session = net.client.vnet.open(
            None, (net.server.adaptor.mac, ETHERTYPE_RPC)
        )
        assert session.lower_session.protocol is net.client.eth

    def test_vnet_push_is_pass_through(self, net):
        sink = _Sink(net.server.stack)
        net.server.eth.open_enable(sink, ETHERTYPE_RPC)
        session = net.client.vnet.open(
            None, (net.server.adaptor.mac, ETHERTYPE_RPC)
        )
        msg = Message(net.client.stack.allocator, b"via-vnet")
        net.client.vnet.push(session, msg)
        net.run_until(lambda: sink.received, 10_000)
        assert sink.received[0][0].startswith(b"via-vnet")
        msg.destroy()


class TestDescriptorModes:
    def test_usc_option_selects_adaptor_mode(self):
        from repro.net.lance import DescriptorUpdateMode

        net_usc = build_tcpip_network(Section2Options.improved())
        net_dense = build_tcpip_network(Section2Options.original())
        assert net_usc.client.adaptor.mode is DescriptorUpdateMode.USC_DIRECT
        assert net_dense.client.adaptor.mode is DescriptorUpdateMode.DENSE_COPY

    def test_dense_mode_touches_more_descriptor_bytes(self):
        results = {}
        for opts in (Section2Options.improved(), Section2Options.original()):
            net = build_tcpip_network(opts)
            establish(net)
            net.client.app.run_pingpong(5)
            net.run_until(lambda: net.client.app.replies >= 5)
            results[opts.usc_descriptors] = (
                net.client.adaptor.descriptor_traffic_bytes
            )
        assert results[False] > results[True]
