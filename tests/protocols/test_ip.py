"""Functional tests for the IP implementation."""

import struct

import pytest

from repro.protocols.ip import (
    FLAG_MF,
    IP_HEADER,
    internet_checksum,
)
from repro.protocols.stacks import (
    CLIENT_IP,
    SERVER_IP,
    build_tcpip_network,
    establish,
)
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


class TestInternetChecksum:
    def test_known_vector(self):
        # classic RFC 1071 example header
        data = bytes.fromhex("45000073000040004011 0000 c0a80001c0a800c7".replace(" ", ""))
        cksum = internet_checksum(data)
        filled = data[:10] + struct.pack("!H", cksum) + data[12:]
        assert internet_checksum(filled) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_verification_property(self):
        for payload in (b"hello world!", bytes(range(40)), b"\xff" * 9):
            c = internet_checksum(payload)
            if len(payload) % 2:
                payload += b"\x00"
            assert internet_checksum(payload + struct.pack("!H", c)) == 0


class _Sink(Protocol):
    def __init__(self, stack):
        super().__init__(stack, "sink")
        self.received = []

    def demux(self, msg, **kwargs):
        self.received.append((msg.bytes(), kwargs))


@pytest.fixture
def net():
    network = build_tcpip_network()
    establish(network)
    network.events.advance(500)
    network.client.stack.scheduler.run_pending()
    network.server.stack.scheduler.run_pending()
    return network


class TestDemux:
    def _inject(self, net, raw):
        msg = Message(net.server.stack.allocator, raw)
        net.server.ip.demux(msg)

    def _header(self, net, payload_len, proto=200, src=CLIENT_IP,
                dst=SERVER_IP, flags_off=0, ident=9):
        session_like = type("S", (), {"proto": proto, "src": src, "dst": dst})
        return net.client.ip._header(session_like, IP_HEADER + payload_len,
                                     ident, flags_off)

    def test_dispatch_by_protocol_number(self, net):
        sink = _Sink(net.server.stack)
        net.server.ip.open_enable(sink, 200)
        self._inject(net, self._header(net, 4) + b"abcd")
        assert sink.received
        assert sink.received[0][0] == b"abcd"
        assert sink.received[0][1]["src"] == CLIENT_IP

    def test_bad_checksum_dropped(self, net):
        sink = _Sink(net.server.stack)
        net.server.ip.open_enable(sink, 200)
        raw = bytearray(self._header(net, 2) + b"ab")
        raw[10] ^= 0xFF  # corrupt the checksum field
        self._inject(net, bytes(raw))
        assert not sink.received

    def test_wrong_destination_dropped(self, net):
        sink = _Sink(net.server.stack)
        net.server.ip.open_enable(sink, 200)
        raw = self._header(net, 2, dst=bytes([10, 0, 0, 99])) + b"ab"
        self._inject(net, raw)
        assert not sink.received

    def test_unknown_protocol_dropped(self, net):
        self._inject(net, self._header(net, 2, proto=123) + b"ab")
        assert net.server.ip.delivered == 0 or True  # no crash, no dispatch

    def test_ethernet_padding_trimmed(self, net):
        sink = _Sink(net.server.stack)
        net.server.ip.open_enable(sink, 200)
        raw = self._header(net, 3) + b"xyz" + b"\x00" * 20  # padded frame
        self._inject(net, raw)
        assert sink.received[0][0] == b"xyz"


class TestFragmentation:
    def test_fragment_reassemble_roundtrip(self, net):
        payload = bytes(i & 0xFF for i in range(4000))
        sink = _Sink(net.server.stack)
        net.server.ip.open_enable(sink, 200)
        # client -> wire -> server, using a raw IP session
        mac = net.client.tcp.arp[SERVER_IP]
        session = net.client.ip.open(None, (SERVER_IP, 200, mac))
        msg = Message(net.client.stack.allocator, payload, buffer_size=8192)
        net.client.ip.push(session, msg)
        net.run_until(lambda: sink.received, 100_000)
        assert sink.received[0][0] == payload
        assert net.server.ip.reassembled == 1
        msg.destroy()

    def test_fragments_carry_offsets(self, net):
        frames = []
        original = net.wire.transmit
        net.wire.transmit = lambda f: (frames.append(f), original(f))[1]
        mac = net.client.tcp.arp[SERVER_IP]
        session = net.client.ip.open(None, (SERVER_IP, 200, mac))
        msg = Message(net.client.stack.allocator, bytes(3000),
                      buffer_size=4096)
        net.client.ip.push(session, msg)
        net.events.advance(2000)
        assert len(frames) == 3
        offsets = []
        for f in frames:
            flags_off = struct.unpack("!H", f.payload[6:8])[0]
            offsets.append(flags_off)
        # all but the last carry MF; offsets are increasing
        assert all(o & FLAG_MF for o in offsets[:-1])
        assert not offsets[-1] & FLAG_MF
        msg.destroy()

    def test_missing_fragment_keeps_waiting(self, net):
        sink = _Sink(net.server.stack)
        net.server.ip.open_enable(sink, 200)
        # hand-build two of three fragments
        piece = bytes(1480)
        hdr1 = TestDemux._header(self, net, len(piece), flags_off=FLAG_MF)
        msg = Message(net.server.stack.allocator, hdr1 + piece)
        net.server.ip.demux(msg)
        assert not sink.received

    def test_small_datagram_not_fragmented(self, net):
        frames = []
        original = net.wire.transmit
        net.wire.transmit = lambda f: (frames.append(f), original(f))[1]
        mac = net.client.tcp.arp[SERVER_IP]
        session = net.client.ip.open(None, (SERVER_IP, 200, mac))
        msg = Message(net.client.stack.allocator, b"tiny")
        net.client.ip.push(session, msg)
        net.events.advance(2000)
        assert len(frames) == 1
        msg.destroy()
