"""Tests on the instruction-level models: structure and option response."""

import pytest

from repro.core.codegen import materialize
from repro.core.ir import CallDynamic, CondBranch
from repro.protocols.models import (
    LIBRARY_FUNCTIONS,
    build_library,
    build_rpc_models,
    build_tcpip_models,
)
from repro.protocols.models.rpc import RPC_PIN_INPUT_MEMBERS, RPC_PIN_OUTPUT_MEMBERS
from repro.protocols.models.tcpip import (
    TCPIP_PIN_INPUT_MEMBERS,
    TCPIP_PIN_OUTPUT_MEMBERS,
)
from repro.protocols.options import Section2Options

IMPROVED = Section2Options.improved()
ORIGINAL = Section2Options.original()


def _by_name(functions):
    return {fn.name: fn for fn in functions}


class TestModelStructure:
    @pytest.mark.parametrize("builder", [build_tcpip_models, build_rpc_models])
    def test_all_models_materialize(self, builder):
        for opts in (IMPROVED, ORIGINAL):
            for fn in builder(opts) + build_library(opts):
                mfn = materialize(fn)
                assert mfn.size > 0

    def test_library_functions_flagged(self):
        for fn in build_library(IMPROVED):
            assert fn.library
            assert fn.name in LIBRARY_FUNCTIONS

    def test_path_members_have_dynamic_sites(self):
        """Path-inlining needs each non-terminal member to dispatch on."""
        fns = _by_name(build_tcpip_models(IMPROVED) + build_rpc_models(IMPROVED))
        for members in (TCPIP_PIN_OUTPUT_MEMBERS, TCPIP_PIN_INPUT_MEMBERS,
                        RPC_PIN_OUTPUT_MEMBERS, RPC_PIN_INPUT_MEMBERS):
            for member in members[:-1]:
                fn = fns[member]
                has_dynamic = any(
                    isinstance(b.terminator, CallDynamic) for b in fn.blocks
                )
                assert has_dynamic, member

    def test_models_carry_inline_error_arms(self):
        """The density pass interleaves small cold arms in every big
        function (the Table 9 mechanism)."""
        for fn in build_tcpip_models(IMPROVED):
            arms = [b for b in fn.blocks if b.label.startswith("__arm")]
            if sum(len(b.instructions) for b in fn.blocks) > 100:
                assert arms, fn.name

    def test_annotated_arm_fraction(self):
        """Roughly a third of the arms are annotated for outlining."""
        annotated = unannotated = 0
        for fn in build_tcpip_models(IMPROVED):
            for b in fn.blocks:
                if b.label.startswith("__arm"):
                    if b.unlikely:
                        annotated += 1
                    else:
                        unannotated += 1
        total = annotated + unannotated
        assert total > 20
        assert 0.2 < annotated / total < 0.45


class TestOptionResponse:
    def _size(self, opts, name):
        fns = _by_name(build_library(opts) + build_tcpip_models(opts))
        return materialize(fns[name]).size

    def test_word_sizing_shrinks_tcp(self):
        assert self._size(IMPROVED, "tcp_push") < self._size(
            ORIGINAL.without("various_inlining"), "tcp_push"
        ) or self._size(IMPROVED, "tcp_push") < self._size(
            IMPROVED.without("word_sized_tcp_state"), "tcp_push"
        )

    def test_avoid_division_removes_mul(self):
        from repro.arch.isa import Op

        fns = _by_name(build_tcpip_models(IMPROVED))
        demux = fns["tcp_demux"]
        mainline_muls = sum(
            1 for b in demux.blocks if not b.unlikely
            for i in b.instructions if i.op is Op.MUL
        )
        assert mainline_muls == 0

        fns_orig = _by_name(
            build_tcpip_models(IMPROVED.without("avoid_division"))
        )
        muls = sum(
            1 for b in fns_orig["tcp_demux"].blocks
            for i in b.instructions if i.op is Op.MUL
        )
        assert muls >= 1

    def test_inline_map_test_changes_structure(self):
        fns_on = _by_name(build_tcpip_models(IMPROVED))
        fns_off = _by_name(
            build_tcpip_models(IMPROVED.without("inline_map_cache_test"))
        )
        on_labels = {b.label for b in fns_on["tcp_demux"].blocks}
        off_labels = {b.label for b in fns_off["tcp_demux"].blocks}
        assert any("pcb_probe" in lbl for lbl in on_labels)
        assert not any("pcb_probe" in lbl for lbl in off_labels)
        assert any("pcb_lookup" in lbl for lbl in off_labels)

    def test_msg_refresh_structure_follows_option(self):
        on = _by_name(build_library(IMPROVED))["msg_refresh"]
        off = _by_name(
            build_library(IMPROVED.without("msg_refresh_short_circuit"))
        )["msg_refresh"]
        on_has_branch = any(
            isinstance(b.terminator, CondBranch)
            and b.terminator.cond == "sole_ref"
            for b in on.blocks
        )
        assert on_has_branch
        off_has_branch = any(
            isinstance(b.terminator, CondBranch)
            and b.terminator.cond == "sole_ref"
            for b in off.blocks
        )
        assert not off_has_branch

    def test_usc_descriptor_blocks(self):
        fns_on = _by_name(build_tcpip_models(IMPROVED))
        fns_off = _by_name(build_tcpip_models(IMPROVED.without("usc_descriptors")))
        on_labels = {b.label for b in fns_on["lance_transmit"].blocks}
        off_labels = {b.label for b in fns_off["lance_transmit"].blocks}
        assert not any(lbl.endswith("_patch") for lbl in on_labels)
        assert any(lbl.endswith("_patch") for lbl in off_labels)


class TestBuilderFreshness:
    def test_each_build_returns_fresh_objects(self):
        a = build_tcpip_models(IMPROVED)
        b = build_tcpip_models(IMPROVED)
        assert all(x is not y for x, y in zip(a, b))
        # mutating one build leaves the other untouched
        a[0].blocks.clear()
        assert b[0].blocks
