"""Functional tests for the RPC protocol suite."""

import pytest

from repro.protocols.stacks import build_rpc_network


@pytest.fixture
def net():
    return build_rpc_network()


class TestRpcRoundtrip:
    def test_single_call(self, net):
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1)
        assert net.server.app.requests_served == 1

    def test_sequential_calls(self, net):
        net.client.app.run_pingpong(10)
        net.run_until(lambda: net.client.app.replies >= 10)
        assert net.client.app.replies == 10
        assert net.server.app.requests_served == 10

    def test_each_call_is_two_frames(self, net):
        net.client.app.run_pingpong(4)
        net.run_until(lambda: net.client.app.replies >= 4)
        net.events.advance(500)
        assert net.wire.frames_carried == 8  # request + reply per call

    def test_channel_released_after_reply(self, net):
        net.client.app.run_pingpong(3)
        net.run_until(lambda: net.client.app.replies >= 3)
        assert net.client.vchan.free_channels == 4

    def test_sequence_numbers_advance(self, net):
        net.client.app.run_pingpong(5)
        net.run_until(lambda: net.client.app.replies >= 5)
        # ping-pong reuses one channel; its seq advanced per call
        busy = [ch for _, ch in net.client.chan.chan_map.traverse()]
        assert max(ch.seq for ch in busy) == 5


class TestAtMostOnce:
    def test_duplicate_request_not_reexecuted(self, net):
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1)
        served = net.server.app.requests_served

        # replay the request frame
        frames = []
        original = net.wire.transmit
        net.wire.transmit = lambda f: (frames.append(f), original(f))[1]
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 2)
        request = next(f for f in frames if f.dst == net.server.adaptor.mac)
        net.wire.transmit(request)
        net.run_until(
            lambda: net.server.chan.duplicate_requests >= 1, 100_000
        )
        assert net.server.app.requests_served == served + 1  # not + 2

    def test_duplicate_gets_cached_reply(self, net):
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1)
        before = net.wire.frames_carried
        # replay: at-most-once resends the cached reply
        key = next(iter(net.server.chan._executed))
        seq, cached = net.server.chan._executed[key]
        net.server.chan._send_reply(key[0], key[1], seq, cached)
        net.events.advance(1000)
        assert net.wire.frames_carried == before + 1


class TestRetransmission:
    def test_lost_request_retransmitted(self, net):
        original = net.wire.transmit
        dropped = []

        def lossy(frame):
            if not dropped and frame.dst == net.server.adaptor.mac:
                dropped.append(frame)
                return 57.6
            return original(frame)

        net.wire.transmit = lossy
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1, 5_000_000)
        assert dropped
        busy = [ch for _, ch in net.client.chan.chan_map.traverse()]
        assert max(ch.retries for ch in busy) >= 1

    def test_lost_reply_recovered_via_reply_cache(self, net):
        original = net.wire.transmit
        dropped = []

        def lossy(frame):
            if not dropped and frame.dst == net.client.adaptor.mac:
                dropped.append(frame)
                return 57.6
            return original(frame)

        net.wire.transmit = lossy
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1, 5_000_000)
        assert dropped
        # the retransmitted request was answered from the cache: the
        # server executed the RPC exactly once
        assert net.server.app.requests_served == 1
        assert net.server.chan.duplicate_requests >= 1


class TestBid:
    def test_stale_boot_id_rejected_then_adopted(self, net):
        net.client.app.run_pingpong(1)
        net.run_until(lambda: net.client.app.replies >= 1)
        # pretend the client rebooted with a different boot id
        net.client.bid.boot_id = 0x9999
        before = net.server.bid.stale_rejections
        net.client.app.run_pingpong(1)
        net.run_until(
            lambda: net.server.bid.stale_rejections > before, 3_000_000
        )
        # the first post-reboot request is dropped; the retransmission
        # (carrying the now-known boot id) goes through
        net.run_until(lambda: net.client.app.replies >= 2, 5_000_000)
        assert net.server.bid.peer_reboots >= 1


class TestBlast:
    def test_large_rpc_payload_fragmented(self, net):
        from repro.xkernel.message import Message

        received = []
        serve = net.server.app.serve
        net.server.app.serve = lambda req: (received.append(req), serve(req))[1]

        payload = bytes(i & 0xFF for i in range(4000))
        msg = Message(net.client.stack.allocator, payload, buffer_size=8192)
        done = []
        net.client.mselect.call(net.client.app.server_id, msg,
                                lambda reply: done.append(reply))
        net.run_until(lambda: done, 1_000_000)
        assert received[0] == payload
        assert net.server.blast.reassembled == 1
        msg.destroy()

    def test_incomplete_reassembly_expires(self, net):
        # deliver one fragment of two directly; the timer reaps it
        import struct

        from repro.protocols.rpc.blast import HEADER_FMT
        from repro.xkernel.message import Message

        hdr = struct.pack(HEADER_FMT, 77, 0, 2, 2800, 0)
        msg = Message(net.server.stack.allocator, hdr + bytes(1400))
        net.server.blast.demux(msg, src_mac=net.client.adaptor.mac)
        assert net.server.blast._reassembly
        net.events.advance(3_000_000)
        assert not net.server.blast._reassembly
        assert net.server.blast.dropped_incomplete == 1


class TestVchanQueueing:
    def test_calls_queue_when_channels_busy(self, net):
        from repro.xkernel.message import Message

        vchan = net.client.vchan
        # occupy all four channels with calls whose replies never come
        original = net.wire.transmit
        net.wire.transmit = lambda f: 57.6  # black-hole everything
        done = []
        for i in range(5):
            msg = Message(net.client.stack.allocator, b"")
            net.client.mselect.call(net.client.app.server_id, msg,
                                    lambda r: done.append(r))
            msg.destroy()
        assert vchan.free_channels == 0
        assert vchan.queued_calls == 1
        net.wire.transmit = original
