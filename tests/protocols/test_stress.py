"""Failure injection: the stacks under random loss and random payloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.stacks import (
    SERVER_IP,
    build_rpc_network,
    build_tcpip_network,
    establish,
)
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


def _lossy_wire(net, drop_indexes):
    """Drop the i-th frames (by transmit order) listed in drop_indexes."""
    original = net.wire.transmit
    counter = {"i": 0}

    def transmit(frame):
        index = counter["i"]
        counter["i"] += 1
        if index in drop_indexes:
            return 57.6  # vanishes on the wire
        return original(frame)

    net.wire.transmit = transmit


class TestTcpUnderLoss:
    @settings(max_examples=10, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=8), max_size=3))
    def test_pingpong_completes_despite_drops(self, drops):
        """Retransmission recovers from any sparse loss pattern."""
        net = build_tcpip_network()
        establish(net)
        net.events.advance(500)
        net.client.stack.scheduler.run_pending()
        net.server.stack.scheduler.run_pending()
        _lossy_wire(net, drops)
        net.client.app.run_pingpong(3)
        net.run_until(lambda: net.client.app.replies >= 3,
                      max_us=30_000_000)
        assert net.client.app.replies == 3
        assert net.server.app.echoes >= 3

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=400), min_size=1,
                    max_size=6))
    def test_arbitrary_payloads_delivered_in_order(self, payloads):
        """TCP delivers random payloads intact and in order."""
        net = build_tcpip_network()
        received = []

        class Sink(Protocol):
            def __init__(self, stack):
                super().__init__(stack, "stress-sink")

            def connection_established(self, session):
                pass

            def demux(self, msg, *, session, **kwargs):
                received.append(msg.bytes())

        sink = Sink(net.server.stack)
        net.server.tcp.open_enable(sink, 4242)
        session = net.client.tcp.open(None, (3001, 4242, SERVER_IP))
        net.run_until(lambda: session.state == "ESTABLISHED", 5_000_000)
        for payload in payloads:
            msg = Message(net.client.stack.allocator, payload)
            net.client.tcp.push(session, msg)
            msg.destroy()
            net.events.advance(1000)
            net.client.stack.scheduler.run_pending()
            net.server.stack.scheduler.run_pending()
        net.run_until(
            lambda: sum(len(r) for r in received)
            >= sum(len(p) for p in payloads),
            5_000_000,
        )
        assert b"".join(received) == b"".join(payloads)


class TestRpcUnderLoss:
    @settings(max_examples=10, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=6), max_size=2))
    def test_at_most_once_under_any_loss(self, drops):
        """Whatever gets lost, every call completes and the server
        executes each RPC exactly once."""
        net = build_rpc_network()
        _lossy_wire(net, drops)
        net.client.app.run_pingpong(3)
        net.run_until(lambda: net.client.app.replies >= 3,
                      max_us=30_000_000)
        assert net.client.app.replies == 3
        assert net.server.app.requests_served == 3  # exactly once each


class TestTracedRunsAreLossFree:
    def test_warmup_absorbs_handshake_slow_paths(self):
        """By the time a roundtrip is traced, the connection is in its
        steady state: established, window open, no retransmissions."""
        from repro.harness.experiment import Experiment

        exp = Experiment("tcpip", "STD")
        events, _ = exp.capture_roundtrip(seed=13)
        from repro.core.walker import EnterEvent

        enters = [e.fn for e in events if isinstance(e, EnterEvent)]
        # exactly one output path and one input path, well-formed
        assert enters.count("tcptest_call") == 1
        assert enters.count("tcp_push") == 1
        assert enters.count("eth_demux") == 1
        assert enters.count("tcptest_demux") == 1
        # no retransmission-era oddities: a clean 10-function roundtrip
        assert len(enters) == 10
