"""Functional tests for the TCP implementation."""

import pytest

from repro.protocols.stacks import build_tcpip_network, establish
from repro.protocols.tcp import (
    CLOSE_WAIT,
    ESTABLISHED,
    SYN_SENT,
    TIME_WAIT,
)
from repro.protocols.options import Section2Options
from repro.xkernel.message import Message


@pytest.fixture
def net():
    network = build_tcpip_network()
    establish(network)
    # drain the final handshake ACK off the wire
    network.events.advance(500)
    network.client.stack.scheduler.run_pending()
    network.server.stack.scheduler.run_pending()
    return network


class TestHandshake:
    def test_three_way_handshake(self, net):
        assert net.client.app.session.state == ESTABLISHED

    def test_server_session_created(self, net):
        assert net.server.tcp.open_connections == 1

    def test_syn_consumes_sequence_number(self):
        network = build_tcpip_network()
        app = network.client.app
        app.connect()
        session = app.session
        assert session.state == SYN_SENT
        assert session.snd_nxt == (session.iss + 1) & 0xFFFFFFFF

    def test_isn_differs_between_sessions(self, net):
        client = net.client.app.session
        server = next(v for _, v in net.server.tcp.pcb_map.traverse())
        assert client.iss != server.iss


class TestDataTransfer:
    def test_pingpong_delivers_bytes(self, net):
        net.client.app.run_pingpong(7)
        net.run_until(lambda: net.client.app.replies >= 7)
        assert net.server.app.echoes == 7

    def test_sequence_numbers_advance(self, net):
        session = net.client.app.session
        before = session.snd_nxt
        net.client.app.run_pingpong(3)
        net.run_until(lambda: net.client.app.replies >= 3)
        assert session.snd_nxt == (before + 3) & 0xFFFFFFFF

    def test_acks_piggyback_no_pure_ack_segments(self, net):
        """In steady ping-pong, data segments carry the ACKs (the paper's
        bi-directional traffic argument): frames on the wire = 2/roundtrip."""
        before = net.wire.frames_carried
        net.client.app.run_pingpong(5)
        net.run_until(lambda: net.client.app.replies >= 5)
        assert net.wire.frames_carried - before == 10

    def test_unacked_buffer_drains(self, net):
        session = net.client.app.session
        net.client.app.run_pingpong(4)
        net.run_until(lambda: net.client.app.replies >= 4)
        assert session.unacked == b""

    def test_congestion_window_opens_with_traffic(self, net):
        session = net.client.app.session
        start_cwnd = session.cwnd
        net.client.app.run_pingpong(15)
        net.run_until(lambda: net.client.app.replies >= 15)
        assert session.cwnd > start_cwnd


class TestRetransmission:
    def test_lost_segment_is_retransmitted(self, net):
        session = net.client.app.session
        # drop the next client data frame
        original = net.wire.transmit
        dropped = []

        def lossy(frame):
            if not dropped and frame.src == net.client.adaptor.mac:
                dropped.append(frame)
                return 57.6
            return original(frame)

        net.wire.transmit = lossy
        net.client.app.run_pingpong(1)
        # the reply cannot arrive until the retransmit timer fires
        net.run_until(lambda: net.client.app.replies >= 1,
                      max_us=5_000_000)
        assert dropped
        assert session.stats_retransmits >= 1
        assert net.client.app.replies == 1

    def test_retransmit_resets_congestion_window(self, net):
        session = net.client.app.session
        net.client.app.run_pingpong(10)
        net.run_until(lambda: net.client.app.replies >= 10)
        cwnd_before = session.cwnd
        net.client.tcp._rexmt_timeout(session)
        assert session.cwnd < cwnd_before
        assert session.cwnd == session.mss


class TestOutOfOrder:
    def test_out_of_order_segment_queued_and_drained(self, net):
        session_map = net.server.tcp.pcb_map
        server_session = next(v for _, v in session_map.traverse())
        base = server_session.rcv_nxt
        # inject two segments out of order directly into the server's TCP
        tcp = net.server.tcp
        client_session = net.client.app.session

        def segment(seq, payload):
            hdr = net.client.tcp._build_header(
                client_session, 0x18, seq, client_session.rcv_nxt, payload
            )
            msg = Message(net.server.stack.allocator, hdr + payload)
            return msg

        from repro.protocols.stacks import CLIENT_IP, SERVER_IP

        seq0 = client_session.snd_nxt
        m2 = segment((seq0 + 1) & 0xFFFFFFFF, b"B")
        m1 = segment(seq0, b"A")
        tcp.demux(m2, src=CLIENT_IP, dst=SERVER_IP)
        assert server_session.rcv_nxt == base  # gap: nothing delivered
        assert server_session.reass
        tcp.demux(m1, src=CLIENT_IP, dst=SERVER_IP)
        assert server_session.rcv_nxt == (base + 2) & 0xFFFFFFFF
        assert not server_session.reass


class TestTeardown:
    def test_fin_handshake(self, net):
        session = net.client.app.session
        server_session = next(v for _, v in net.server.tcp.pcb_map.traverse())
        net.client.tcp.close(session)
        net.run_until(lambda: session.state == TIME_WAIT, 1_000_000)
        assert server_session.state == CLOSE_WAIT

    def test_close_twice_rejected(self, net):
        from repro.xkernel.protocol import XkernelError

        session = net.client.app.session
        net.client.tcp.close(session)
        with pytest.raises(XkernelError):
            net.client.tcp.close(session)


class TestWindowArithmetic:
    def test_threshold_with_division(self):
        net = build_tcpip_network(Section2Options.original())
        establish(net)
        session = net.client.app.session
        t = net.client.tcp.window_update_threshold(session)
        assert t == session.max_window * 35 // 100

    def test_threshold_with_shift_add(self, net):
        session = net.client.app.session
        t = net.client.tcp.window_update_threshold(session)
        # ~31 % approximation: within a few percent of a third
        assert abs(t - session.max_window / 3) < 0.05 * session.max_window

    def test_both_thresholds_operationally_close(self, net):
        """The paper: the 33 % change does not noticeably affect TCP."""
        session = net.client.app.session
        w = session.max_window
        with_div = w * 35 // 100
        with_shift = (w >> 2) + (w >> 4)
        assert abs(with_div - with_shift) < 0.05 * w


class TestSlowTimer:
    def test_slowtimo_visits_connections_via_map(self, net):
        count = net.client.tcp.slowtimo()
        assert count == 1
        assert net.client.tcp.slowtimo_runs == 1

    def test_slowtimo_reaps_time_wait(self, net):
        session = net.client.app.session
        net.client.tcp.close(session)
        net.run_until(lambda: session.state == TIME_WAIT, 1_000_000)
        assert net.client.tcp.slowtimo() == 1
        assert net.client.tcp.open_connections == 0


class TestChecksum:
    def test_corrupted_segment_dropped(self, net):
        from repro.protocols.stacks import CLIENT_IP, SERVER_IP

        client_session = net.client.app.session
        hdr = net.client.tcp._build_header(
            client_session, 0x18, client_session.snd_nxt,
            client_session.rcv_nxt, b"X",
        )
        corrupted = bytearray(hdr + b"X")
        corrupted[-1] ^= 0xFF
        msg = Message(net.server.stack.allocator, bytes(corrupted))
        server_session = next(v for _, v in net.server.tcp.pcb_map.traverse())
        before = server_session.rcv_nxt
        net.server.tcp.demux(msg, src=CLIENT_IP, dst=SERVER_IP)
        assert server_session.rcv_nxt == before
