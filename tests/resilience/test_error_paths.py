"""Protocol error paths as segment variants: each fault kind is priced
by a real (pruned, cond-overridden) walk of the demux span, so faulted
streams stay transition-memoizable."""

import pytest

from repro.traffic.segments import (
    FAULT_RECIPES,
    SEGMENT_FAULT_KINDS,
    SegmentLibrary,
)
from repro.xkernel.map import make_scheme

#: the established-hit variant every stack prices cheapest
HIT = {
    "tcpip": ("tcp", (True, 1, 0), (True, 1, 0), (True, 1, 0), True),
    "rpc": ("rpc", (True, 1, 0), (True, 1, 0), (True, 1, 0), True),
}


@pytest.fixture(scope="module", params=["tcpip", "rpc"])
def stack(request):
    return request.param


@pytest.fixture(scope="module")
def library(stack):
    pop = "tcp" if stack == "tcpip" else "rpc"
    return SegmentLibrary(stack, "OUT", population=pop)


@pytest.fixture(scope="module")
def scheme():
    return make_scheme("one-entry")


class TestFaultVariants:
    @pytest.mark.parametrize("kind", SEGMENT_FAULT_KINDS)
    def test_every_kind_walks_and_prices(self, stack, library, scheme, kind):
        variant = HIT[stack] + (kind,)
        packed, cpu = library.segment(variant, scheme)
        assert len(packed) > 0
        assert cpu.instructions > 0
        assert cpu.cycles > 0

    def test_truncated_header_is_cheapest(self, stack, library, scheme):
        _, pristine = library.segment(HIT[stack], scheme)
        _, truncated = library.segment(
            HIT[stack] + ("truncated_header",), scheme
        )
        # a runt frame dies at the link layer: far less work than a
        # full demux walk
        assert truncated.instructions < pristine.instructions

    def test_checksum_failure_stops_before_delivery(
        self, stack, library, scheme
    ):
        _, pristine = library.segment(HIT[stack], scheme)
        _, cksum = library.segment(
            HIT[stack] + ("corrupt_checksum",), scheme
        )
        assert cksum.instructions < pristine.instructions
        _, truncated = library.segment(
            HIT[stack] + ("truncated_header",), scheme
        )
        # the checksum is verified above the link layer, so rejecting a
        # corrupt packet costs more than rejecting a runt frame
        assert cksum.instructions > truncated.instructions

    def test_duplicate_suppression_walks_the_full_demux(
        self, stack, library, scheme
    ):
        _, dup = library.segment(
            HIT[stack] + ("duplicated_packet",), scheme
        )
        _, truncated = library.segment(
            HIT[stack] + ("truncated_header",), scheme
        )
        # a duplicate is recognized only after demux: it pays the walk
        assert dup.instructions > truncated.instructions

    def test_variants_are_memoized(self, stack, library, scheme):
        variant = HIT[stack] + ("corrupt_checksum",)
        a = library.segment(variant, scheme)
        b = library.segment(variant, scheme)
        assert a is b

    def test_unknown_kind_rejected(self, stack, library, scheme):
        with pytest.raises(ValueError, match="fault kind"):
            library.segment(HIT[stack] + ("cosmic_ray",), scheme)

    def test_recipes_cover_both_stacks(self):
        for recipes in (FAULT_RECIPES["tcpip"], FAULT_RECIPES["rpc"]):
            assert set(recipes) == set(SEGMENT_FAULT_KINDS)

    def test_pristine_variants_unchanged_by_fault_support(
        self, stack, library, scheme
    ):
        # 5-tuple keys must keep pricing exactly as before the fault
        # machinery existed (rate-0 bit-identity depends on it)
        packed_a, cpu_a = library.segment(HIT[stack], scheme)
        packed_b, cpu_b = library.segment(HIT[stack], scheme)
        assert packed_a is packed_b
        assert cpu_a.instructions > 0
