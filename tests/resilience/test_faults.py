"""The fault-profile model: rates, scopes, seeds and the rate-0 fast path."""

import pytest

from repro.resilience.faults import (
    SCOPES,
    STREAM_FAULT_KINDS,
    FaultProfile,
    profile_from_rates,
)
from repro.traffic import TrafficSpec
from repro.traffic.arrivals import SCAN

SPEC = TrafficSpec(packets=2_000, flows=200, warmup_packets=400, seed=0)


class TestValidation:
    def test_default_profile_is_empty(self):
        profile = FaultProfile()
        assert profile.total_rate == 0.0
        assert profile.arrivals(SPEC) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultProfile(rates=(("cosmic_ray", 0.1),))

    def test_send_side_kind_rejected_with_specific_error(self):
        with pytest.raises(ValueError, match="send-side"):
            FaultProfile(rates=(("dropped_packet", 0.1),))

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultProfile(rates=(("corrupt_checksum", 1.5),))
        with pytest.raises(ValueError, match="must be in"):
            FaultProfile(rates=(("corrupt_checksum", -0.1),))

    def test_total_rate_capped_at_one(self):
        with pytest.raises(ValueError, match="exceeds 1"):
            FaultProfile(
                rates=(("corrupt_checksum", 0.6), ("truncated_header", 0.6))
            )

    def test_bad_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            FaultProfile(scope="warm")

    def test_uniform_spreads_rate_over_kinds(self):
        profile = FaultProfile.uniform(0.2)
        assert profile.total_rate == pytest.approx(0.2)
        assert {kind for kind, _ in profile.rates} == set(STREAM_FAULT_KINDS)

    def test_uniform_needs_kinds(self):
        with pytest.raises(ValueError, match="at least one kind"):
            FaultProfile.uniform(0.1, kinds=())

    def test_profile_from_rates_mapping(self):
        profile = profile_from_rates({"corrupt_checksum": 0.05}, seed=3)
        assert profile.rates == (("corrupt_checksum", 0.05),)
        assert profile.seed == 3

    def test_rates_sorted_and_hashable(self):
        a = FaultProfile(
            rates=(("truncated_header", 0.1), ("corrupt_checksum", 0.2))
        )
        b = FaultProfile(
            rates=(("corrupt_checksum", 0.2), ("truncated_header", 0.1))
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_to_json_shape(self):
        j = FaultProfile.uniform(0.04, seed=2, scope="hot").to_json()
        assert set(j) == {"rates", "seed", "scope", "total_rate"}
        assert j["scope"] == "hot"


class TestArrivals:
    def test_all_zero_rates_return_none(self):
        profile = FaultProfile(
            rates=tuple((kind, 0.0) for kind in STREAM_FAULT_KINDS)
        )
        assert profile.arrivals(SPEC) is None

    def test_draws_are_deterministic_per_profile_and_spec(self):
        def sequence():
            draw = FaultProfile.uniform(0.3, seed=7).arrivals(SPEC)
            return [draw() for _ in range(500)]

        assert sequence() == sequence()

    def test_different_seeds_differ(self):
        a = FaultProfile.uniform(0.3, seed=0).arrivals(SPEC)
        b = FaultProfile.uniform(0.3, seed=1).arrivals(SPEC)
        assert [a() for _ in range(500)] != [b() for _ in range(500)]

    def test_spec_seed_feeds_the_digest(self):
        a = FaultProfile.uniform(0.3).arrivals(SPEC)
        b = FaultProfile.uniform(0.3).arrivals(SPEC.with_(seed=9))
        assert [a() for _ in range(500)] != [b() for _ in range(500)]

    def test_every_positive_kind_arrives(self):
        draw = FaultProfile.uniform(0.8, seed=0).arrivals(SPEC)
        seen = {draw() for _ in range(2_000)}
        assert set(STREAM_FAULT_KINDS) <= seen

    def test_rate_controls_frequency(self):
        draw = FaultProfile.uniform(0.1, seed=0).arrivals(SPEC)
        hits = sum(draw() is not None for _ in range(10_000))
        assert 700 <= hits <= 1_300  # ~10% of 10k


class TestScopeFilter:
    def test_all_scope_has_no_filter(self):
        assert FaultProfile.uniform(0.1).scope_filter(SPEC) is None

    def test_hot_scope_is_the_top_half(self):
        in_scope = FaultProfile.uniform(0.1, scope="hot").scope_filter(SPEC)
        half = SPEC.flows // 2
        assert in_scope(0) and in_scope(half - 1)
        assert not in_scope(half) and not in_scope(SCAN)

    def test_cold_scope_is_the_bottom_half_plus_scans(self):
        in_scope = FaultProfile.uniform(0.1, scope="cold").scope_filter(SPEC)
        half = SPEC.flows // 2
        assert in_scope(half) and in_scope(SPEC.flows - 1) and in_scope(SCAN)
        assert not in_scope(0)

    def test_scopes_constant_matches(self):
        assert SCOPES == ("all", "hot", "cold")
