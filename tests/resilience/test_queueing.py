"""The overload queue: integer timeline, exact percentiles, saturation."""

from collections import Counter

import pytest

from repro.resilience.queueing import (
    DEFAULT_LOADS,
    POLICIES,
    LoadPoint,
    OverloadSpec,
    mean_service_cycles,
    percentiles,
    simulate_queue,
)


class TestOverloadSpec:
    def test_defaults_validate(self):
        OverloadSpec().validate()
        assert OverloadSpec().loads == DEFAULT_LOADS

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"loads": ()}, "non-empty"),
            ({"loads": (0,)}, "positive"),
            ({"queue_capacity": 0}, "queue_capacity"),
            ({"policy": "red"}, "policy"),
            ({"backlog_threshold": 0}, "backlog_threshold"),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            OverloadSpec(**kwargs).validate()

    def test_policies_constant(self):
        assert POLICIES == ("drop-tail", "unbounded")


class TestMeanService:
    def test_floor_mean(self):
        assert mean_service_cycles([10, 11]) == 10

    def test_at_least_one(self):
        assert mean_service_cycles([0, 0]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no service demands"):
            mean_service_cycles([])


class TestPercentiles:
    def test_nearest_rank_on_known_values(self):
        hist = Counter({v: 1 for v in range(1, 101)})  # 1..100
        assert percentiles(hist, (0.50, 0.99, 0.999)) == [50, 99, 100]

    def test_p999_rank_is_exact_not_float_truncated(self):
        # 1000 values: rank of p999 must be ceil(0.999 * 1000) = 999,
        # not 998 (the binary-float truncation trap)
        hist = Counter({v: 1 for v in range(1, 1_001)})
        assert percentiles(hist, (0.999,)) == [999]

    def test_single_value(self):
        assert percentiles(Counter({7: 50}), (0.5, 0.99)) == [7, 7]

    def test_empty_histogram(self):
        assert percentiles(Counter(), (0.5, 0.99)) == [0, 0]


def _constant_services(n=2_000, cycles=100):
    return [cycles] * n


class TestSimulateQueue:
    def test_underload_never_queues(self):
        lp = simulate_queue(_constant_services(), 50, OverloadSpec(), 100)
        assert lp.dropped == 0
        assert not lp.saturated
        # at 50% load every packet finds an idle server: sojourn = service
        assert lp.p50 == lp.p99 == lp.p999 == lp.max_sojourn == 100

    def test_exact_capacity_keeps_up(self):
        lp = simulate_queue(_constant_services(), 100, OverloadSpec(), 100)
        assert lp.dropped == 0
        assert not lp.saturated

    def test_overload_drops_and_saturates(self):
        lp = simulate_queue(_constant_services(), 120, OverloadSpec(), 100)
        assert lp.dropped > 0
        assert lp.saturated
        assert lp.admitted == lp.offered - lp.dropped
        assert lp.drop_fraction == pytest.approx(lp.dropped / lp.offered)

    def test_drop_tail_bounds_packets_in_system(self):
        spec = OverloadSpec(queue_capacity=8)
        lp = simulate_queue(_constant_services(), 200, spec, 100)
        # with <= 8 in system and constant service, sojourn <= 8 services
        assert lp.max_sojourn <= 8 * 100
        assert lp.dropped > 0

    def test_unbounded_policy_admits_everything(self):
        spec = OverloadSpec(policy="unbounded", backlog_threshold=10)
        lp = simulate_queue(_constant_services(), 150, spec, 100)
        assert lp.dropped == 0
        assert lp.saturated  # the backlog kept growing
        assert lp.end_backlog > 10 * 100

    def test_unbounded_underload_not_saturated(self):
        spec = OverloadSpec(policy="unbounded")
        lp = simulate_queue(_constant_services(), 80, spec, 100)
        assert not lp.saturated

    def test_latency_grows_with_load(self):
        p99s = [
            simulate_queue(_constant_services(), load, OverloadSpec(), 100).p99
            for load in (60, 90, 110)
        ]
        assert p99s[0] <= p99s[1] <= p99s[2]
        assert p99s[0] < p99s[2]

    def test_deterministic(self):
        services = [(i * 37) % 150 + 50 for i in range(3_000)]
        a = simulate_queue(services, 110, OverloadSpec(), 100).to_json()
        b = simulate_queue(services, 110, OverloadSpec(), 100).to_json()
        assert a == b

    def test_load_point_json_shape(self):
        lp = simulate_queue(_constant_services(100), 100, OverloadSpec(), 100)
        j = lp.to_json()
        assert isinstance(lp, LoadPoint)
        assert set(j) == {
            "load_pct", "offered", "admitted", "dropped", "p50", "p99",
            "p999", "max_sojourn", "end_backlog", "saturated",
            "drop_fraction",
        }
