"""The resilience study: rate-0 identity, determinism, engines, surface.

The rate-0 identity is the tentpole invariant: a fault profile whose
rates are all zero must produce a traffic point *bit-identical* to a
pristine :func:`run_traffic_point` run — on the fast engine and on both
gensim paths.  With any positive rate, equal (profile, spec) inputs must
reproduce the same study to the byte.
"""

import json

import pytest

from repro import api
from repro.gensim import have_numpy
from repro.harness.parallel import CellIncident, SweepReport
from repro.harness.reporting import render_resilience_table
from repro.resilience import (
    FaultProfile,
    OverloadSpec,
    run_resilience_point,
    run_resilience_study,
)
from repro.traffic import TrafficSpec, run_traffic_point

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="the vector path needs numpy"
)

SMALL = TrafficSpec(packets=2_000, flows=200, warmup_packets=400, seed=0)
CHURNED = SMALL.with_(churn=0.005)
LOADS = OverloadSpec(loads=(60, 100, 130))
ZERO = FaultProfile()
FAULTY = FaultProfile.uniform(0.08, seed=1)


class TestRateZeroIdentity:
    @pytest.mark.parametrize("stack", ["tcpip", "rpc", "mixed"])
    def test_zero_profile_is_pristine_on_fast(self, stack):
        spec = CHURNED.with_(stack=stack)
        pristine = run_traffic_point(spec, "lru:4", engine="fast")
        zero = run_resilience_point(
            spec, "lru:4", profile=ZERO, overload=LOADS, engine="fast"
        )
        assert json.dumps(pristine.to_json()) == json.dumps(
            zero.traffic.to_json()
        )
        assert zero.faulted_packets == 0

    @needs_numpy
    def test_zero_profile_is_pristine_on_gensim(self):
        pristine = run_traffic_point(CHURNED, "lru:4", engine="gensim")
        zero = run_resilience_point(
            CHURNED, "lru:4", profile=ZERO, overload=LOADS, engine="gensim"
        )
        assert json.dumps(pristine.to_json()) == json.dumps(
            zero.traffic.to_json()
        )

    def test_explicit_zero_rates_take_the_same_fast_path(self):
        explicit = FaultProfile(
            rates=tuple(
                (kind, 0.0)
                for kind in ("corrupt_checksum", "duplicated_packet")
            )
        )
        a = run_resilience_point(
            CHURNED, "one-entry", profile=explicit, overload=LOADS
        )
        b = run_resilience_point(
            CHURNED, "one-entry", profile=ZERO, overload=LOADS
        )
        assert json.dumps(a.traffic.to_json()) == json.dumps(
            b.traffic.to_json()
        )


class TestFaultedPoints:
    def test_positive_rate_is_deterministic(self):
        a = run_resilience_point(
            CHURNED, "lru:4", profile=FAULTY, overload=LOADS
        )
        b = run_resilience_point(
            CHURNED, "lru:4", profile=FAULTY, overload=LOADS
        )
        assert json.dumps(a.to_json()) == json.dumps(b.to_json())

    @needs_numpy
    @pytest.mark.parametrize("stack", ["tcpip", "rpc", "mixed"])
    def test_fast_and_gensim_agree_on_faulted_streams(self, stack):
        spec = CHURNED.with_(stack=stack)
        fast = run_resilience_point(
            spec, "lru:4", profile=FAULTY, overload=LOADS, engine="fast"
        )
        gen = run_resilience_point(
            spec, "lru:4", profile=FAULTY, overload=LOADS, engine="gensim"
        )
        a, b = fast.to_json(), gen.to_json()
        assert a["traffic"].pop("engine") == "fast"
        assert b["traffic"].pop("engine") == "gensim"
        assert json.dumps(a) == json.dumps(b)

    def test_every_kind_arrives_and_is_counted(self):
        point = run_resilience_point(
            CHURNED, "lru:4",
            profile=FaultProfile.uniform(0.4, seed=0), overload=LOADS,
        )
        assert set(point.fault_counts) == {
            "bad_demux_key", "corrupt_checksum", "duplicated_packet",
            "truncated_header",
        }
        assert all(n > 0 for n in point.fault_counts.values())
        assert point.faulted_packets == sum(point.fault_counts.values())

    def test_faults_cost_cycles(self):
        pristine = run_resilience_point(
            CHURNED, "one-entry", profile=ZERO, overload=LOADS
        )
        faulted = run_resilience_point(
            CHURNED, "one-entry", profile=FAULTY, overload=LOADS
        )
        assert faulted.traffic.instructions != pristine.traffic.instructions

    def test_scoped_profile_restricts_arrivals(self):
        hot = run_resilience_point(
            CHURNED, "lru:4",
            profile=FaultProfile.uniform(0.2, seed=0, scope="hot"),
            overload=LOADS,
        )
        everywhere = run_resilience_point(
            CHURNED, "lru:4",
            profile=FaultProfile.uniform(0.2, seed=0), overload=LOADS,
        )
        assert 0 < hot.faulted_packets < everywhere.faulted_packets

    def test_saturation_detected_beyond_capacity(self):
        point = run_resilience_point(
            CHURNED, "one-entry", profile=FAULTY,
            overload=OverloadSpec(loads=(60, 100, 140)),
        )
        assert point.saturation_point == 140 or point.saturation_point == 100
        by_load = {lp.load_pct: lp for lp in point.load_points}
        assert not by_load[60].saturated
        assert by_load[140].saturated
        assert by_load[60].p99 <= by_load[140].p99

    def test_resolves_still_count_every_packet(self):
        point = run_resilience_point(
            CHURNED, "one-entry", profile=FAULTY, overload=LOADS
        )
        stats = point.traffic.map_stats["tcp"]["l4"]
        # truncated/checksum faults never reach the l4 map; the rest do
        skipped = (
            point.fault_counts["truncated_header"]
            + point.fault_counts["corrupt_checksum"]
        )
        assert stats["resolves"] == CHURNED.packets - skipped
        assert stats["failed_resolves"] > 0  # bad_demux_key probes miss


class TestRunResilienceStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_resilience_study(
            SMALL,
            schemes=("one-entry", "lru:4"),
            mixes=("zipf", "scan"),
            fault_rates=(0.0, 0.05),
            overload=LOADS,
        )

    def test_grid_is_complete(self, study):
        assert len(study.points) == 8
        for mix in study.mixes:
            for rate in study.fault_rates:
                for scheme in study.schemes:
                    point = study.point(scheme, mix, rate)
                    assert point.profile.total_rate == pytest.approx(rate)

    def test_unknown_point_raises(self, study):
        with pytest.raises(KeyError):
            study.point("lru:4", "zipf", 0.5)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            run_resilience_study(SMALL, mixes=("diurnal",))

    def test_sweep_report_embedded(self, study):
        assert study.sweep.completed == 8
        assert study.sweep.ok()

    def test_study_json_roundtrips_with_provenance(self, study):
        j = study.to_json()
        assert j["schema"] == "repro.resilience/1"
        assert j["generator"] == "repro.api.resilience"
        assert len(j["points"]) == 8
        assert j["sweep"]["completed"] == 8
        assert j["sweep"]["ok"] is True
        json.dumps(j)  # fully serializable

    def test_parallel_equals_serial(self):
        serial = run_resilience_study(
            SMALL, schemes=("one-entry",), fault_rates=(0.0, 0.05),
            overload=LOADS,
        )
        parallel = run_resilience_study(
            SMALL, schemes=("one-entry",), fault_rates=(0.0, 0.05),
            overload=LOADS, parallel=True, max_workers=2,
        )
        a = [p.to_json() for p in serial.points]
        b = [p.to_json() for p in parallel.points]
        assert json.dumps(a) == json.dumps(b)

    def test_render_table_is_engine_free_and_stable(self, study):
        table = render_resilience_table(study)
        assert "Resilience study: tcpip OUT" in table
        assert "saturates at" in table or "no saturation" in table
        assert "fast" not in table and "gensim" not in table
        assert table == render_resilience_table(study)


class TestSweepReportJson:
    def test_incident_and_report_round_trip(self):
        report = SweepReport(stack="tcpip", engine="fast", samples=2)
        report.incidents.append(
            CellIncident("OUT", 42, 1, "crash", "boom")
        )
        j = report.to_json()
        assert j["incidents"] == [
            {"config": "OUT", "seed": 42, "attempt": 1, "kind": "crash",
             "detail": "boom"}
        ]
        assert j["retried"] == 1
        assert j["ok"] is True
        report.failures.append(
            CellIncident("CLO", 43, 3, "exhausted", "gone")
        )
        assert report.to_json()["ok"] is False

    def test_divergence_report_to_json(self):
        from repro.faults.guard import DivergenceReport

        d = DivergenceReport(
            stack="tcpip", config="OUT", seed=1,
            mismatches=(("mcpi", 1.0, 2.0),),
        )
        assert d.to_json() == {
            "stack": "tcpip", "config": "OUT", "seed": 1,
            "mismatches": [
                {"metric": "mcpi", "fast": 1.0, "reference": 2.0}
            ],
        }


class TestSurface:
    def test_api_verb(self):
        study = api.resilience(api.ResilienceStudySpec(
            traffic=SMALL, schemes=("one-entry",), fault_rates=(0.0,),
            overload=LOADS,
        ))
        assert study.engine == "fast"
        assert len(study.points) == 1

    def test_api_verb_rejects_reference_engine(self):
        with pytest.raises(ValueError):
            api.resilience(api.ResilienceStudySpec(
                traffic=SMALL, schemes=("one-entry",), fault_rates=(0.0,),
                engine="reference",
            ))

    def test_cli_smoke(self, tmp_path, capsys):
        from repro.__main__ import resilience_main

        out = tmp_path / "study.json"
        rc = resilience_main([
            "tcpip", "OUT", "--packets", "2000", "--flows", "200",
            "--warmup", "400", "--fault-rates", "0", "0.05",
            "--schemes", "one-entry", "--loads", "60", "100", "130",
            "--json", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Resilience study: tcpip OUT" in captured.out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.resilience/1"
        assert len(payload["points"]) == 2

    def test_faults_cli_embeds_structured_sweep(self, tmp_path):
        from repro.__main__ import faults_main

        out = tmp_path / "faults.json"
        rc = faults_main([
            "tcpip", "OUT", "--rate", "0.25", "--samples", "1",
            "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        sweep = payload["sweep"]
        # the structured SweepReport.to_json shape, not render strings
        assert sweep["ok"] is True
        assert sweep["incidents"] == []
        assert isinstance(sweep["completed"], int)
