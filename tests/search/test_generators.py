"""Property tests for the genome packer and the candidate generators.

The packer's contract — every packed layout is non-overlapping and
``FUNCTION_ALIGN``-aligned *by construction*, pinned genes land on their
requested i-cache set — must hold for arbitrary genomes, including the
mangled ones the mutation kernel produces.
"""

import random

import pytest

from repro.core.layout import BLOCK, ICACHE
from repro.core.program import FUNCTION_ALIGN
from repro.harness.configs import build_configured_program
from repro.search.artifact import NSETS, Gene, pack_genome
from repro.search.driver import _profile_conflicts
from repro.search.evaluate import CellEvaluator
from repro.search.generators import (
    affinity_genome,
    call_sequence,
    conflict_genome,
    incumbent_genome,
    mutate,
)


@pytest.fixture(scope="module")
def clo_build():
    return build_configured_program("tcpip", "CLO")


def assert_layout_sound(program, placements):
    """Placements cover the program, aligned and overlap-free."""
    assert set(placements) == set(program.names())
    for name, addr in placements.items():
        assert addr % FUNCTION_ALIGN == 0, name
    spans = sorted(
        (addr, addr + program.size_of(name), name)
        for name, addr in placements.items()
    )
    for (_, end_a, name_a), (start_b, _, name_b) in zip(spans, spans[1:]):
        assert end_a <= start_b, f"{name_a} overlaps {name_b}"


class TestPackGenome:
    def test_empty_genome_places_everything(self, clo_build):
        placements = pack_genome(clo_build.program, ())
        assert_layout_sound(clo_build.program, placements)

    def test_pins_land_on_their_set(self, clo_build):
        program = clo_build.program
        names = sorted(program.names())[:6]
        genome = tuple(
            Gene(name, (i * 37) % NSETS) for i, name in enumerate(names)
        )
        placements = pack_genome(program, genome)
        assert_layout_sound(program, placements)
        for gene in genome:
            got = (
                (placements[gene.name] - program.text_base) // BLOCK
            ) % NSETS
            assert got == gene.set_offset, gene.name

    def test_duplicate_gene_rejected(self, clo_build):
        program = clo_build.program
        name = next(iter(program.names()))
        with pytest.raises(ValueError, match="twice"):
            pack_genome(program, (Gene(name), Gene(name)))

    def test_unknown_names_are_skipped(self, clo_build):
        placements = pack_genome(
            clo_build.program, (Gene("no_such_function"),)
        )
        assert "no_such_function" not in placements
        assert_layout_sound(clo_build.program, placements)

    def test_set_offset_validated(self):
        with pytest.raises(ValueError):
            Gene("f", NSETS)
        with pytest.raises(ValueError):
            Gene("f", -1)

    def test_random_genomes_always_pack_soundly(self, clo_build):
        program = clo_build.program
        names = list(program.names())
        rng = random.Random(7)
        for _ in range(50):
            chosen = rng.sample(names, rng.randrange(len(names) + 1))
            genome = tuple(
                Gene(
                    name,
                    rng.randrange(NSETS) if rng.random() < 0.5 else None,
                )
                for name in chosen
            )
            placements = pack_genome(program, genome)
            assert_layout_sound(program, placements)
            # the program itself agrees
            program.layout(lambda p: dict(placements))
            program.check_no_overlap()


class TestGenerators:
    @pytest.fixture(scope="class")
    def evaluator(self):
        ev = CellEvaluator("tcpip", "CLO")
        yield ev
        ev.restore_default()

    def test_incumbent_reproduces_default_layout(self, evaluator):
        program = evaluator.program
        genome = incumbent_genome(program)
        placements = pack_genome(program, genome)
        assert_layout_sound(program, placements)
        for name, addr in placements.items():
            want = (
                (evaluator.default_placements[name] - program.text_base)
                // BLOCK
            ) % NSETS
            got = ((addr - program.text_base) // BLOCK) % NSETS
            assert got == want, name

    def test_affinity_genome_is_deterministic_and_sound(self, evaluator):
        program = evaluator.program
        calls = call_sequence(evaluator._events, program)
        assert calls, "the traced roundtrip must invoke functions"
        g1 = affinity_genome(calls, program)
        g2 = affinity_genome(calls, program)
        assert g1 == g2
        assert len({g.name for g in g1}) == len(g1)
        assert_layout_sound(program, pack_genome(program, g1))

    def test_conflict_genome_is_deterministic_and_sound(self, evaluator):
        program = evaluator.program
        calls = call_sequence(evaluator._events, program)
        matrix = _profile_conflicts(evaluator)
        g1 = conflict_genome(matrix, program, calls)
        g2 = conflict_genome(matrix, program, calls)
        assert g1 == g2
        assert len({g.name for g in g1}) == len(g1)
        assert_layout_sound(program, pack_genome(program, g1))

    def test_mutations_preserve_soundness(self, evaluator):
        program = evaluator.program
        genome = incumbent_genome(program)
        rng = random.Random(3)
        for _ in range(100):
            genome = mutate(genome, rng)
            assert len({g.name for g in genome}) == len(genome)
            placements = pack_genome(program, genome)
            assert_layout_sound(program, placements)

    def test_mutation_is_seed_deterministic(self, evaluator):
        genome = incumbent_genome(evaluator.program)
        a = mutate(genome, random.Random(11))
        b = mutate(genome, random.Random(11))
        assert a == b

    def test_footprint_stays_within_reason(self, evaluator):
        # packed layouts must not balloon the image: everything the
        # genome places fits within a handful of cache images
        program = evaluator.program
        genome = incumbent_genome(program)
        placements = pack_genome(program, genome)
        extent = max(
            addr + program.size_of(name)
            for name, addr in placements.items()
        )
        total = sum(program.size_of(n) for n in program.names())
        # each pinned gene may skip at most one cache image, plus the
        # one-image gap before the unmentioned tail
        bound = total + (len(genome) + 2) * ICACHE
        assert extent - program.text_base < bound
