"""The certified bounds prefilter: prunes simulations, changes nothing.

The prefilter drops a candidate only when its static steady lower bound
exceeds the round-start elite floor — a proof the candidate can neither
win nor become a mutation parent.  The tests pin both halves of that
contract: at the recorded smoke cell the filter actually fires, and the
full search result (winner, history, counters) is bit-identical to a run
with the filter disabled.
"""

import pytest

from repro.search import search_cell

#: the recorded smoke cell: at this (budget, seed) at least one mutant's
#: lower bound provably exceeds the elite floor (see check_bounds.py)
STACK, CONFIG, BUDGET, SEED = "rpc", "STD", 24, 0


@pytest.fixture(scope="module")
def pruned_and_plain():
    pruned = search_cell(STACK, CONFIG, budget=BUDGET, seed=SEED)
    plain = search_cell(
        STACK, CONFIG, budget=BUDGET, seed=SEED, certify_prune=False
    )
    return pruned, plain


class TestCertifiedPrefilter:
    def test_prunes_at_the_recorded_seed(self, pruned_and_plain):
        pruned, plain = pruned_and_plain
        assert pruned.bounds_pruned >= 1
        assert plain.bounds_pruned == 0
        assert pruned.sims_avoided == pruned.bounds_pruned

    def test_result_is_bit_identical(self, pruned_and_plain):
        pruned, plain = pruned_and_plain
        assert pruned.artifact.score == plain.artifact.score
        assert pruned.artifact.placements == plain.artifact.placements
        assert pruned.artifact.genome == plain.artifact.genome
        assert pruned.artifact.origin == plain.artifact.origin
        assert pruned.artifact.round_found == plain.artifact.round_found
        assert pruned.best_score == plain.best_score
        assert pruned.baseline_score == plain.baseline_score
        assert pruned.history == plain.history
        assert pruned.rounds == plain.rounds

    def test_pruned_candidates_still_consume_budget(self, pruned_and_plain):
        pruned, plain = pruned_and_plain
        assert pruned.evaluated == plain.evaluated
        assert pruned.generated == plain.generated
        assert pruned.prefiltered_out == plain.prefiltered_out

    def test_counters_reach_the_artifact_and_json(self, pruned_and_plain):
        pruned, _ = pruned_and_plain
        extra = pruned.artifact.extra
        assert extra["bounds_pruned"] == pruned.bounds_pruned
        assert extra["sims_avoided"] == pruned.sims_avoided
        payload = pruned.to_json()
        assert payload["bounds_pruned"] == pruned.bounds_pruned
        assert payload["sims_avoided"] == pruned.sims_avoided
        assert "bounds-pruned" in pruned.summary()
