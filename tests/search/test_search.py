"""Tests for the layout-search driver: determinism, engine identity,
prefilter soundness, and artifact replay."""

import json

import pytest

from repro.api import RunSpec, Settings, run
from repro.harness.configs import CONFIG_NAMES
from repro.search import LayoutArtifact, search_cell
from repro.search.evaluate import CellEvaluator

GRID = [
    (stack, config)
    for stack in ("tcpip", "rpc")
    for config in CONFIG_NAMES
]


class TestDeterminism:
    def test_same_seed_same_budget_is_bit_identical(self):
        a = search_cell("tcpip", "CLO", budget=8, seed=3)
        b = search_cell("tcpip", "CLO", budget=8, seed=3)
        assert a.best_score == b.best_score
        assert a.artifact.placements == b.artifact.placements
        assert a.artifact.genome == b.artifact.genome
        assert a.history == b.history

    def test_different_seeds_explore_differently(self):
        a = search_cell("tcpip", "STD", budget=8, seed=0)
        b = search_cell("tcpip", "STD", budget=8, seed=99)
        # the searches must at least have generated different candidates
        assert (
            a.artifact.placements != b.artifact.placements
            or a.generated != b.generated
            or a.history != b.history
        )

    def test_fast_and_reference_engines_agree(self):
        fast = search_cell(
            "tcpip", "STD", budget=4, seed=1,
            settings=Settings(engine="fast"),
        )
        ref = search_cell(
            "tcpip", "STD", budget=4, seed=1,
            settings=Settings(engine="reference"),
        )
        assert fast.best_score == ref.best_score
        assert fast.baseline_score == ref.baseline_score
        assert fast.artifact.placements == ref.artifact.placements

    def test_budget_bounds_candidate_simulations(self):
        result = search_cell("tcpip", "STD", budget=5, seed=0)
        assert result.evaluated <= 5
        with pytest.raises(ValueError, match="budget"):
            search_cell("tcpip", "STD", budget=0)


class TestSearchQuality:
    def test_never_regresses_the_baseline(self):
        result = search_cell("rpc", "BAD", budget=4, seed=0)
        assert result.best_score <= result.baseline_score

    def test_beats_cloned_bipartite_on_clo(self):
        # the acceptance cell: search must find a layout at or below the
        # cloned bipartite baseline (here it strictly improves)
        result = search_cell("tcpip", "CLO", budget=16, seed=0)
        assert result.bipartite_score is not None
        assert result.best_score < result.bipartite_score
        assert result.improved

    def test_summary_renders(self):
        result = search_cell("tcpip", "STD", budget=4, seed=0)
        text = result.summary()
        assert "tcpip/STD" in text
        assert "best found" in text
        payload = result.to_json()
        assert payload["budget"] == 4
        assert payload["artifact"]["placements"]


class TestPrefilterSoundness:
    @pytest.mark.parametrize("stack,config", GRID)
    def test_prefilter_never_discards_the_winner(self, stack, config):
        """No statically-rejected candidate simulates better than the
        best the search returned — on every cell of the paper's grid."""
        result = search_cell(
            stack, config, budget=6, seed=0, keep_rejected=True
        )
        evaluator = CellEvaluator(stack, config)
        try:
            for placements in result.rejected:
                score = evaluator.score(placements)
                assert not score < result.best_score, (
                    f"prefilter dropped a better layout on "
                    f"({stack}, {config}): {score} < {result.best_score}"
                )
        finally:
            evaluator.restore_default()


class TestArtifact:
    def test_json_roundtrip_is_lossless(self):
        result = search_cell("tcpip", "CLO", budget=8, seed=0)
        art = result.artifact
        clone = LayoutArtifact.from_json(
            json.loads(json.dumps(art.to_json()))
        )
        assert clone.placements == art.placements
        assert clone.genome == art.genome
        assert clone.score == art.score
        assert clone.baseline == art.baseline
        assert (clone.stack, clone.config) == (art.stack, art.config)
        assert (clone.seed, clone.budget) == (art.seed, art.budget)

    def test_save_load(self, tmp_path):
        result = search_cell("tcpip", "STD", budget=4, seed=0)
        path = tmp_path / "artifact.json"
        result.artifact.save(path)
        loaded = LayoutArtifact.load(path)
        assert loaded.placements == result.artifact.placements

    def test_replay_is_bit_identical(self):
        """The acceptance gate: the emitted artifact replays through
        ``repro.api.run`` to exactly the recorded score."""
        result = search_cell("tcpip", "CLO", budget=8, seed=0)
        art = LayoutArtifact.from_json(result.artifact.to_json())
        replay = run(RunSpec("tcpip", "CLO", samples=1, layout=art))
        sample = replay.samples[0]
        assert sample.steady.mcpi == art.score["steady_mcpi"]
        assert (
            sample.cold.memory.icache.misses
            == art.score["cold_icache_misses"]
        )

    def test_stale_artifact_fails_loudly(self):
        result = search_cell("tcpip", "STD", budget=4, seed=0)
        art = result.artifact
        stale = LayoutArtifact.from_json(art.to_json())
        # an artifact that no longer places every function of the build
        # must not silently produce a half-placed program
        stale.placements.pop(next(iter(stale.placements)))
        with pytest.raises(ValueError, match="stale"):
            run(RunSpec("tcpip", "STD", samples=1, layout=stale))
