"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_quickstart():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "end-to-end roundtrip latency" in result.stdout
    assert "mCPI" in result.stdout


def test_stack_tour():
    result = _run("stack_tour.py")
    assert result.returncode == 0, result.stderr
    assert "handshake complete" in result.stdout
    assert "reassembled 1 datagram" in result.stdout
    assert "answered from the reply cache" in result.stdout


def test_technique_tour_tcpip():
    result = _run("technique_tour.py", "tcpip")
    assert result.returncode == 0, result.stderr
    for config in ("BAD", "STD", "OUT", "CLO", "PIN", "ALL"):
        assert config in result.stdout
    assert "worst/best mCPI ratio" in result.stdout


def test_technique_tour_rejects_unknown_stack():
    result = _run("technique_tour.py", "osi")
    assert result.returncode != 0


def test_custom_protocol():
    result = _run("custom_protocol.py")
    assert result.returncode == 0, result.stderr
    assert "cost of the extra layer" in result.stdout


def test_cli_subset():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--tables", "1", "--samples", "1"],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Table 1" in result.stdout
