"""The perf-trend gate's baseline-auditing semantics.

Pins the distinction the gate script draws between two baseline states:

* a gated *section missing entirely* — the baseline predates the gate —
  is announced and skipped (exit 0), so new sections can be introduced
  without invalidating every historical baseline;
* a section *present but carrying nulls* in enforced fields — the
  baseline run attempted the measurement and lost data — stays a hard
  failure (exit 1).

Plus the datalayout gate: bit-for-bit grid identity and the
cells-below-floor acceptance.
"""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO / "benchmarks" / "check_perf_trend.py"

spec = importlib.util.spec_from_file_location("check_perf_trend", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def write_json(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def grid_payload():
    """A minimal valid datalayout grid passing floor and identity."""
    return {
        "seed": 42,
        "techniques": {},
        "wb_floor": {"tcpip": 990, "rpc": 1005},
        "cells_below_floor": {"coalesce": 12, "stream": 4},
        "cells": [
            {
                "stack": "tcpip",
                "config": "STD",
                "technique": "coalesce",
                "steady_stalls": 594,
            }
        ],
    }


class TestMissingFields:
    def test_absent_section_returns_none(self):
        assert gate.missing_fields({}, "kernel", ("a",)) is None

    def test_present_section_reports_nulls(self):
        baseline = {"kernel": {"a": 1.0, "b": None}}
        assert gate.missing_fields(baseline, "kernel", ("a", "b", "c")) == [
            "kernel.b",
            "kernel.c",
        ]

    def test_null_section_body_reports_everything(self):
        assert gate.missing_fields({"kernel": None}, "kernel", ("a",)) == [
            "kernel.a"
        ]


class TestSectionAbsentVsNull:
    """main() through the CLI: skip on absence, fail on nulls."""

    def test_absent_streaming_section_skips_and_passes(self, tmp_path, capsys):
        baseline = write_json(
            tmp_path / "baseline.json",
            {"hit_rates": {"spec": "cell", "schemes": {"lru": 0.5}}},
        )
        smoke = write_json(
            tmp_path / "smoke.json",
            {"hit_rates": {"spec": "cell", "schemes": {"lru": 0.5}}},
        )
        rc = gate.main(["--traffic", smoke, "--traffic-baseline", baseline])
        assert rc == 0
        assert "SECTION ABSENT" in capsys.readouterr().out

    def test_null_enforced_field_fails(self, tmp_path, capsys):
        streaming = {name: 1.0 for name in gate.REQUIRED_TRAFFIC_STREAMING}
        streaming["streaming_speedup_vs_naive"] = None
        baseline = write_json(
            tmp_path / "baseline.json", {"streaming": streaming}
        )
        smoke = write_json(tmp_path / "smoke.json", {})
        rc = gate.main(["--traffic", smoke, "--traffic-baseline", baseline])
        assert rc == 1
        assert "BASELINE INVALID" in capsys.readouterr().err

    def test_end_to_end_absent_section_skips(self, tmp_path, capsys):
        baseline = write_json(tmp_path / "baseline.json", {})
        smoke = write_json(
            tmp_path / "smoke.json",
            {"end_to_end": {"speedup_vs_reference": 100.0}},
        )
        rc = gate.main([smoke, "--baseline", baseline])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SECTION ABSENT" in out
        assert "perf trend OK" in out


class TestDatalayoutGate:
    def test_identical_grid_passes(self, tmp_path, capsys):
        grid = grid_payload()
        baseline = write_json(tmp_path / "baseline.json", {"grid": grid})
        fresh = write_json(
            tmp_path / "fresh.json", {"engine": "gensim", "grid": grid}
        )
        rc = gate.main(
            ["--datalayout", fresh, "--datalayout-baseline", baseline]
        )
        assert rc == 0
        assert "grid identical" in capsys.readouterr().out

    def test_grid_drift_fails(self, tmp_path, capsys):
        baseline = write_json(
            tmp_path / "baseline.json", {"grid": grid_payload()}
        )
        drifted = grid_payload()
        drifted["cells"][0]["steady_stalls"] += 1
        fresh = write_json(
            tmp_path / "fresh.json", {"engine": "fast", "grid": drifted}
        )
        rc = gate.main(
            ["--datalayout", fresh, "--datalayout-baseline", baseline]
        )
        assert rc == 1
        assert "DATALAYOUT DRIFT" in capsys.readouterr().err

    def test_floor_failure_fails_even_with_identity(self, tmp_path, capsys):
        grid = grid_payload()
        grid["cells_below_floor"] = {"coalesce": 5, "stream": 2}
        baseline = write_json(tmp_path / "baseline.json", {"grid": grid})
        fresh = write_json(
            tmp_path / "fresh.json", {"engine": "fast", "grid": grid}
        )
        rc = gate.main(
            ["--datalayout", fresh, "--datalayout-baseline", baseline]
        )
        assert rc == 1
        assert "DATALAYOUT FLOOR" in capsys.readouterr().err

    def test_absent_grid_section_skips(self, tmp_path, capsys):
        baseline = write_json(tmp_path / "baseline.json", {})
        fresh = write_json(
            tmp_path / "fresh.json", {"engine": "fast", "grid": grid_payload()}
        )
        rc = gate.main(
            ["--datalayout", fresh, "--datalayout-baseline", baseline]
        )
        assert rc == 0
        assert "SECTION ABSENT" in capsys.readouterr().out

    def test_empty_grid_fields_are_invalid_not_skipped(self, tmp_path, capsys):
        baseline = write_json(
            tmp_path / "baseline.json",
            {"grid": {"wb_floor": {}, "cells_below_floor": {}, "cells": []}},
        )
        fresh = write_json(
            tmp_path / "fresh.json", {"engine": "fast", "grid": grid_payload()}
        )
        rc = gate.main(
            ["--datalayout", fresh, "--datalayout-baseline", baseline]
        )
        assert rc == 1
        assert "BASELINE INVALID" in capsys.readouterr().err

    def test_committed_baseline_is_valid_and_meets_the_floor(self):
        baseline = json.loads(
            (REPO / "BENCH_datalayout.json").read_text()
        )
        grid = baseline["grid"]
        assert max(grid["cells_below_floor"].values()) >= (
            gate.DATALAYOUT_CELL_FLOOR
        )
        assert len(grid["cells"]) == 72  # 6 techniques x 12 cells


class TestNothingToCheck:
    def test_no_inputs_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            gate.main([])
        assert exc.value.code == 2
