"""Unit tests for the run-time tracer."""

import pytest

from repro.core.walker import ExitEvent, MarkEvent
from repro.trace.tracer import NullTracer, Tracer, call_counts


class TestTracer:
    def test_disabled_by_default(self):
        t = Tracer()
        with t.scope("f", {"c": True}):
            pass
        assert t.events == []

    def test_records_well_nested_stream(self):
        t = Tracer()
        t.start()
        with t.scope("outer", {"a": 1}):
            with t.scope("inner"):
                pass
        events = t.stop()
        kinds = [(type(e).__name__, getattr(e, "fn", None)) for e in events]
        assert kinds == [
            ("EnterEvent", "outer"),
            ("EnterEvent", "inner"),
            ("ExitEvent", "inner"),
            ("ExitEvent", "outer"),
        ]

    def test_conds_and_data_copied(self):
        t = Tracer()
        t.start()
        conds = {"x": True}
        with t.scope("f", conds, {"msg": 0x100}):
            pass
        events = t.stop()
        conds["x"] = False  # later mutation must not affect the record
        assert events[0].conds == {"x": True}
        assert events[0].data == {"msg": 0x100}

    def test_exit_recorded_on_exception(self):
        t = Tracer()
        t.start()
        with pytest.raises(ValueError):
            with t.scope("f"):
                raise ValueError("boom")
        events = t.stop()
        assert isinstance(events[-1], ExitEvent)

    def test_marks(self):
        t = Tracer()
        t.start()
        t.mark("before")
        with t.scope("f"):
            pass
        t.mark("after")
        events = t.stop()
        assert isinstance(events[0], MarkEvent)
        assert isinstance(events[-1], MarkEvent)

    def test_stop_inside_scope_rejected(self):
        t = Tracer()
        t.start()
        with pytest.raises(RuntimeError):
            with t.scope("f"):
                t.stop()
        # unwind cleanly for the context manager's finally

    def test_stop_clears_events(self):
        t = Tracer()
        t.start()
        with t.scope("f"):
            pass
        first = t.stop()
        t.start()
        second = t.stop()
        assert len(first) == 2
        assert second == []

    def test_restart_captures_fresh(self):
        t = Tracer()
        t.start()
        with t.scope("a"):
            pass
        t.stop()
        t.start()
        with t.scope("b"):
            pass
        events = t.stop()
        assert events[0].fn == "b"


class TestNullTracer:
    def test_never_records(self):
        t = NullTracer()
        with t.scope("f", {"c": 1}):
            t.mark("m")
        assert t.events == []

    def test_cannot_start(self):
        with pytest.raises(RuntimeError):
            NullTracer().start()


class TestCallCounts:
    def test_counts_enter_events_only(self):
        t = Tracer()
        t.start()
        for _ in range(3):
            with t.scope("tcp_push"):
                with t.scope("in_cksum"):
                    pass
                t.mark("wire")
        events = t.stop()
        assert call_counts(events) == {"tcp_push": 3, "in_cksum": 3}

    def test_empty_stream(self):
        assert call_counts([]) == {}

    def test_reentry_counts_each_call(self):
        t = Tracer()
        t.start()
        with t.scope("f"):
            with t.scope("f"):
                pass
        assert call_counts(t.stop()) == {"f": 2}
