"""Bounded memo growth: LRU caps, eviction exactness, and the watchdog.

Eviction must be a pure memory/speed trade: a stream run under tiny
memo caps must produce counter totals bit-identical to an uncapped run
(the flush-on-evict accounting and the exactness cross-check hold the
invariant), and a watchdog-degraded stream must stay exact too.
"""

import json

import pytest

from repro.gensim import have_numpy
from repro.traffic import TrafficSpec, run_traffic_point
from repro.traffic.stream import StreamExactnessError, TransitionStream

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="the vector path needs numpy"
)

#: enough alphabet pressure (scan + churn) to force evictions at tiny caps
SPEC = TrafficSpec(
    packets=4_000, flows=200, mix="scan", churn=0.005,
    warmup_packets=400, seed=0,
)
TINY = SPEC.with_(memo_state_cap=4, memo_edge_cap=6)


def _totals(point):
    return (
        point.instructions, point.stall_cycles, point.cpu_cycles,
        point.steady_instructions, point.steady_stall_cycles,
        point.steady_cpu_cycles,
    )


class TestMemoCaps:
    def test_capped_equals_uncapped_totals(self):
        full = run_traffic_point(SPEC, "lru:4")
        tiny = run_traffic_point(TINY, "lru:4")
        assert _totals(full) == _totals(tiny)
        assert full.memo_evictions == 0
        assert tiny.memo_evictions > 0

    def test_eviction_counter_reported_in_json(self):
        tiny = run_traffic_point(TINY, "lru:4")
        j = tiny.to_json()
        assert j["memo_evictions"] == tiny.memo_evictions > 0
        assert j["degraded"] is False

    def test_capped_runs_are_deterministic(self):
        a = run_traffic_point(TINY, "lru:4").to_json()
        b = run_traffic_point(TINY, "lru:4").to_json()
        assert a == b

    @needs_numpy
    def test_capped_fast_equals_capped_gensim(self):
        fast = run_traffic_point(TINY, "lru:4", engine="fast")
        gen = run_traffic_point(TINY, "lru:4", engine="gensim")
        assert _totals(fast) == _totals(gen)
        assert fast.memo_evictions == gen.memo_evictions

    def test_default_caps_never_evict_on_the_golden_cell(self):
        point = run_traffic_point(
            TrafficSpec(packets=2_000, flows=200, warmup_packets=400),
            "one-entry",
        )
        assert point.memo_evictions == 0

    def test_spec_validates_caps(self):
        with pytest.raises(ValueError, match="memo_state_cap"):
            SPEC.with_(memo_state_cap=1).validate()
        with pytest.raises(ValueError, match="memo_edge_cap"):
            SPEC.with_(memo_edge_cap=0).validate()

    def test_caps_surface_in_spec_json(self):
        j = SPEC.to_json()
        assert j["memo_state_cap"] == 16_384
        assert j["memo_edge_cap"] == 65_536


class TestWatchdog:
    def test_zero_watchdog_degrades_but_stays_exact(self):
        normal = run_traffic_point(SPEC, "lru:4")
        degraded = run_traffic_point(SPEC, "lru:4", watchdog_s=0.0)
        assert degraded.degraded
        assert not normal.degraded
        assert _totals(normal) == _totals(degraded)

    def test_degraded_flag_in_json(self):
        degraded = run_traffic_point(SPEC, "lru:4", watchdog_s=0.0)
        assert degraded.to_json()["degraded"] is True

    def test_generous_watchdog_never_trips(self):
        point = run_traffic_point(SPEC, "lru:4", watchdog_s=3600.0)
        assert not point.degraded


class TestExactnessCrossCheck:
    def test_re_simulated_evicted_edges_are_checked(self):
        # tiny caps force evict + re-intern cycles; every re-simulation
        # is compared against the recorded delta of the evicted edge
        from repro.traffic.segments import SegmentLibrary
        from repro.traffic.stream import make_stream_machine
        from repro.xkernel.map import make_scheme

        lib = SegmentLibrary("tcpip", "OUT", population="tcp")
        scheme = make_scheme("one-entry")
        variants = [
            ("tcp", (True, 1, 0), (True, 1, 0), (True, 1, 0), True),
            ("tcp", (False, 1, 0), (False, 1, 0), (False, 1, 2), True),
            ("tcp", (False, 1, 0), (False, 1, 0), (False, 1, 4), False),
        ]
        stream = TransitionStream(
            make_stream_machine("fast"), state_cap=2, edge_cap=2
        )
        stream.start_phase("all")
        for i in range(120):
            v = variants[(i * 7) % 3]
            stream.feed(v, lambda v=v: lib.segment(v, scheme)[0])
        assert stream.memo_evictions > 0
        assert stream.exactness_checks > 0

    def test_exactness_error_is_a_runtime_error(self):
        assert issubclass(StreamExactnessError, RuntimeError)
