"""TrafficSpec validation and the deterministic arrival sampler."""

import random

import pytest

from repro.traffic import MIXES, STACKS, TrafficSpec
from repro.traffic.arrivals import SCAN, ArrivalSampler


class TestSpec:
    def test_default_spec_is_the_acceptance_cell(self):
        spec = TrafficSpec()
        spec.validate()
        assert spec.packets == 1_000_000
        assert spec.flows == 10_000
        assert spec.stack in STACKS
        assert spec.mix in MIXES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stack": "atm"},
            {"mix": "poisson"},
            {"packets": 0},
            {"flows": -1},
            {"buckets": 48},
            {"churn": 1.0},
            {"scan_fraction": 1.5},
            {"rpc_fraction": -0.1},
            {"warmup_packets": 1_000_000},
            {"burst_mean": 0},
            {"chain_cap": 0},
            {"zipf_s": 0.0},
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ValueError):
            TrafficSpec(**kwargs).validate()

    def test_with_and_json_round_trip(self):
        spec = TrafficSpec().with_(mix="bursty", flows=64)
        assert spec.mix == "bursty"
        assert spec.flows == 64
        assert TrafficSpec(**spec.to_json()) == spec


class TestArrivals:
    def _slots(self, spec, n=2_000):
        sampler = ArrivalSampler(spec, random.Random(spec.seed))
        return [sampler.next() for _ in range(n)]

    @pytest.mark.parametrize("mix", MIXES)
    def test_deterministic_and_in_range(self, mix):
        spec = TrafficSpec(mix=mix, flows=100, packets=10_000)
        a = self._slots(spec)
        b = self._slots(spec)
        assert a == b
        for slot in a:
            assert slot == SCAN or 0 <= slot < spec.flows
        if mix != "scan":
            assert SCAN not in a

    def test_zipf_is_skewed_toward_low_slots(self):
        spec = TrafficSpec(mix="zipf", flows=500, packets=10_000)
        slots = self._slots(spec, 5_000)
        assert slots.count(0) > 20 * max(1, slots.count(spec.flows - 1))

    def test_bursty_repeats_slots(self):
        spec = TrafficSpec(mix="bursty", flows=500, burst_mean=16)
        slots = self._slots(spec, 2_000)
        repeats = sum(1 for a, b in zip(slots, slots[1:]) if a == b)
        assert repeats > len(slots) // 2

    def test_scan_fraction_is_respected(self):
        spec = TrafficSpec(mix="scan", flows=200, scan_fraction=0.5)
        slots = self._slots(spec, 4_000)
        scans = slots.count(SCAN)
        assert 0.4 < scans / len(slots) < 0.6

    def test_uniform_covers_the_population(self):
        spec = TrafficSpec(mix="uniform", flows=32)
        assert set(self._slots(spec, 2_000)) == set(range(32))
