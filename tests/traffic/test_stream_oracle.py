"""The streaming engine against sequential simulation, and across engines.

Two oracles anchor the traffic subsystem's exactness claim:

* the transition-memoized :class:`TransitionStream` must reproduce, to
  the counter, what a persistent machine accumulates simulating the same
  segment sequence one pass at a time (memoization is a pure
  optimization);
* the fast and gensim engines must produce bit-identical study JSON
  (the committed golden table is the CI-scale version of this).
"""

import pytest

from repro.arch.fastsim import FastMachine
from repro.gensim import GenMachine, have_numpy
from repro.traffic import TrafficSpec, run_traffic_point
from repro.traffic.segments import SegmentLibrary
from repro.traffic.stream import TransitionStream, make_stream_machine
from repro.xkernel.map import make_scheme

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="the vector path needs numpy"
)

#: a realistic little alphabet: established hit, cold miss, and a
#: not-found walk on an unestablished flow
VARIANTS = [
    ("tcp", (True, 1, 0), (True, 1, 0), (True, 1, 0), True),
    ("tcp", (False, 1, 0), (False, 1, 0), (False, 1, 2), True),
    ("tcp", (False, 1, 0), (False, 1, 0), (False, 1, 4), False),
]


def _sequence(n=60):
    """A fixed pseudo-random variant sequence (no library needed)."""
    state = 0x2545F491
    out = []
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(VARIANTS[state % len(VARIANTS)])
    return out


@pytest.fixture(scope="module")
def library():
    return SegmentLibrary("tcpip", "OUT", population="tcp")


def _naive_totals(machine, library, scheme, sequence):
    machine.reset()
    totals = [0] * 15
    for variant in sequence:
        packed, _cpu = library.segment(variant, scheme)
        delta = machine.mem_delta(packed)
        totals = [t + d for t, d in zip(totals, delta)]
    return totals


def _streamed(machine, library, scheme, sequence, split):
    stream = TransitionStream(machine)
    stream.start_phase("warmup")
    for i, variant in enumerate(sequence):
        if i == split:
            stream.start_phase("steady")
        stream.feed(variant, lambda v=variant: library.segment(v, scheme)[0])
    warm = stream.phase_counters("warmup")
    steady = stream.phase_counters("steady")
    return stream, [w + s for w, s in zip(warm, steady)]


class TestMemoizationIsExact:
    @pytest.mark.parametrize("spec", ["one-entry", "none", "lru:4"])
    def test_stream_equals_sequential_fast(self, library, spec):
        scheme = make_scheme(spec)
        sequence = _sequence()
        naive = _naive_totals(FastMachine(), library, scheme, sequence)
        stream, totals = _streamed(
            FastMachine(), library, scheme, sequence, split=20
        )
        assert totals == naive
        # the whole point: far fewer simulated passes than packets
        assert stream.novel_passes < len(sequence)
        assert stream.distinct_states <= stream.novel_passes + 1

    def test_phase_split_never_changes_the_totals(self, library):
        scheme = make_scheme("one-entry")
        sequence = _sequence()
        _, at_5 = _streamed(FastMachine(), library, scheme, sequence, 5)
        _, at_37 = _streamed(FastMachine(), library, scheme, sequence, 37)
        assert at_5 == at_37

    def test_stream_equals_sequential_gensim_source(self, library):
        scheme = make_scheme("one-entry")
        sequence = _sequence(40)
        naive = _naive_totals(
            GenMachine(path="source"), library, scheme, sequence
        )
        _, totals = _streamed(
            GenMachine(path="source"), library, scheme, sequence, split=10
        )
        assert totals == naive

    @needs_numpy
    def test_stream_equals_sequential_gensim_vector(self, library):
        scheme = make_scheme("lru:4")
        sequence = _sequence(40)
        naive = _naive_totals(
            GenMachine(path="vector"), library, scheme, sequence
        )
        _, totals = _streamed(
            GenMachine(path="vector"), library, scheme, sequence, split=10
        )
        assert totals == naive


class TestCrossEngine:
    def test_fast_and_gensim_points_are_bit_identical(self):
        spec = TrafficSpec(
            packets=3_000,
            flows=300,
            warmup_packets=500,
            mix="scan",
            churn=0.01,
        )
        fast = run_traffic_point(spec, "lru:4", engine="fast").to_json()
        gen = run_traffic_point(spec, "lru:4", engine="gensim").to_json()
        assert fast.pop("engine") == "fast"
        assert gen.pop("engine") == "gensim"
        assert fast == gen

    def test_guarded_engines_map_to_their_primaries(self):
        assert isinstance(make_stream_machine("guarded"), FastMachine)
        assert isinstance(make_stream_machine("guarded-gensim"), GenMachine)

    def test_reference_engine_is_refused(self):
        with pytest.raises(ValueError, match="reference"):
            make_stream_machine("reference")
        with pytest.raises(ValueError, match="packed-segment"):
            run_traffic_point(
                TrafficSpec(packets=10, warmup_packets=0, flows=4),
                "one-entry",
                engine="reference",
            )
