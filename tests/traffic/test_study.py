"""The demux-cache study driver, the api verb, and the CLI."""

import json
import random

import pytest

from repro import api
from repro.harness.reporting import render_traffic_table
from repro.traffic import TrafficSpec, run_traffic_point, run_traffic_study
from repro.traffic.arrivals import SCAN, ArrivalSampler

#: small enough to keep the suite quick, big enough to exercise warm-up,
#: churn, and every segment variant
SMALL = TrafficSpec(packets=2_000, flows=200, warmup_packets=400, seed=0)


class TestRunTrafficPoint:
    @pytest.mark.parametrize("stack", ["tcpip", "rpc", "mixed"])
    def test_every_stack_streams(self, stack):
        point = run_traffic_point(SMALL.with_(stack=stack), "one-entry")
        assert point.packets == SMALL.packets
        assert point.instructions > 0
        assert 0 < point.steady_instructions < point.instructions
        assert point.stall_cycles > 0
        assert point.cpu_cycles > 0
        expected = {"tcpip": {"tcp"}, "rpc": {"rpc"}, "mixed": {"tcp", "rpc"}}
        assert set(point.map_stats) == expected[stack]
        assert 0.0 <= point.l4_hit_rate <= 1.0
        assert point.mcpi > 0
        assert point.steady_mcpi > 0

    def test_resolves_count_every_packet(self):
        point = run_traffic_point(SMALL, "one-entry")
        resolves = sum(
            layers["l4"]["resolves"] for layers in point.map_stats.values()
        )
        assert resolves == SMALL.packets

    def test_churn_tears_flows_down(self):
        churned = SMALL.with_(churn=0.02)
        point = run_traffic_point(churned, "lru:4")
        l4 = point.map_stats["tcp"]["l4"]
        assert l4["unbinds"] > 0
        assert l4["binds"] == SMALL.flows + l4["unbinds"]
        assert l4["invalidations"] <= l4["unbinds"]

    def test_scan_packets_walk_chains_and_never_install(self):
        scan = SMALL.with_(mix="scan", scan_fraction=1.0)
        point = run_traffic_point(scan, "one-entry")
        l4 = point.map_stats["tcp"]["l4"]
        assert l4["installs"] == 0
        assert l4["cache_hits"] == 0
        assert l4["chain_probes"] > 0

    def test_no_cache_scheme_never_hits(self):
        point = run_traffic_point(SMALL, "none")
        assert point.l4_hit_rate == 0.0

    def test_points_are_deterministic(self):
        a = run_traffic_point(SMALL.with_(mix="bursty"), "assoc:4x2").to_json()
        b = run_traffic_point(SMALL.with_(mix="bursty"), "assoc:4x2").to_json()
        assert a == b


class TestRunTrafficStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_traffic_study(
            SMALL,
            schemes=("one-entry", "none", "direct:16"),
            mixes=("zipf", "uniform"),
        )

    def test_grid_is_complete(self, study):
        assert len(study.points) == 6
        assert study.schemes == ("one-entry", "none", "direct:16")
        for mix in study.mixes:
            for scheme in study.schemes:
                point = study.point(scheme, mix, SMALL.flows)
                assert point.spec.mix == mix
        with pytest.raises(KeyError):
            study.point("one-entry", "bursty", SMALL.flows)

    def test_points_match_standalone_runs(self, study):
        alone = run_traffic_point(SMALL.with_(mix="uniform"), "direct:16")
        assert (
            study.point("direct:16", "uniform", SMALL.flows).to_json()
            == alone.to_json()
        )

    def test_rejects_unknown_mix(self):
        with pytest.raises(ValueError, match="mix"):
            run_traffic_study(SMALL, mixes=("poisson",))

    def test_render_is_engine_free_and_complete(self, study):
        table = render_traffic_table(study)
        assert "Demux-cache study: tcpip OUT" in table
        assert "engine" not in table
        assert "vs one-entry" in table
        for scheme in study.schemes:
            assert scheme in table
        assert table.count("+0.00%") == len(study.mixes)  # the baselines

    def test_study_json_round_trips_through_dumps(self, study):
        assert json.loads(json.dumps(study.to_json())) == study.to_json()


class TestApiVerb:
    def test_traffic_verb_runs_a_study(self):
        study = api.traffic(
            api.TrafficStudySpec(traffic=SMALL, schemes=("one-entry",))
        )
        assert study.engine == "fast"
        assert len(study.points) == 1

    def test_engine_override_beats_environment(self):
        study = api.traffic(api.TrafficStudySpec(
            traffic=SMALL.with_(packets=600, warmup_packets=100, flows=50),
            schemes=("none",),
            engine="gensim",
        ))
        assert study.engine == "gensim"

    def test_default_spec_is_the_acceptance_cell(self):
        # don't run it (1M packets) — just check the wiring resolves it
        assert TrafficSpec().packets == 1_000_000
        assert "traffic" in api.__all__


class TestCli:
    def test_traffic_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "study.json"
        rc = main(
            [
                "traffic",
                "tcpip",
                "OUT",
                "--packets",
                "1500",
                "--flows",
                "150",
                "--warmup",
                "300",
                "--schemes",
                "one-entry",
                "none",
                "--json",
                str(out),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "Demux-cache study" in printed
        payload = json.loads(out.read_text())
        assert [p["scheme"] for p in payload["points"]] == ["one-entry", "none"]
        assert payload["points"][0]["packets"] == 1500

    def test_cli_rejects_unknown_stack(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["traffic", "atm", "OUT"])


class TestScanChurnInterplay:
    def test_scan_slots_never_alias_bound_flows(self):
        """The sampler's SCAN sentinel is disjoint from slot space."""
        spec = SMALL.with_(mix="scan", scan_fraction=0.3)
        sampler = ArrivalSampler(spec, random.Random(spec.seed))
        slots = [sampler.next() for _ in range(2_000)]
        assert SCAN in slots
        assert all(s == SCAN or 0 <= s < spec.flows for s in slots)
