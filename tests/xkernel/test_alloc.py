"""Unit tests for the simulated allocator."""

import pytest

from repro.xkernel.alloc import GRANULE, AllocationError, SimAllocator


class TestSimAllocator:
    def test_addresses_are_disjoint(self):
        a = SimAllocator()
        x = a.malloc(100)
        y = a.malloc(100)
        assert abs(x - y) >= 100

    def test_granule_rounding(self):
        a = SimAllocator()
        x = a.malloc(1)
        y = a.malloc(1)
        assert y - x == GRANULE

    def test_free_then_malloc_reuses_lifo(self):
        a = SimAllocator()
        x = a.malloc(64)
        a.malloc(64)
        a.free(x)
        assert a.malloc(64) == x
        assert a.reuse_count == 1

    def test_lifo_order(self):
        a = SimAllocator()
        x, y = a.malloc(32), a.malloc(32)
        a.free(x)
        a.free(y)
        assert a.malloc(32) == y  # most recently freed first

    def test_different_size_classes_do_not_mix(self):
        a = SimAllocator()
        x = a.malloc(16)
        a.free(x)
        y = a.malloc(64)
        assert y != x

    def test_double_free_rejected(self):
        a = SimAllocator()
        x = a.malloc(16)
        a.free(x)
        with pytest.raises(AllocationError):
            a.free(x)

    def test_invalid_size_rejected(self):
        with pytest.raises(AllocationError):
            SimAllocator().malloc(0)

    def test_live_accounting(self):
        a = SimAllocator()
        x = a.malloc(16)
        assert a.is_live(x)
        assert a.live_bytes == 16
        a.free(x)
        assert not a.is_live(x)
        assert a.live_bytes == 0

    def test_jitter_changes_layout(self):
        layouts = set()
        for seed in range(5):
            a = SimAllocator(jitter_seed=seed)
            layouts.add(a.malloc(128))
        assert len(layouts) > 1

    def test_jitter_is_deterministic(self):
        a1 = SimAllocator(jitter_seed=42)
        a2 = SimAllocator(jitter_seed=42)
        assert a1.malloc(64) == a2.malloc(64)
