"""Unit tests for the packet classifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xkernel.classifier import (
    ClassifierError,
    FieldMatch,
    PacketClassifier,
    tcp_path_classifier,
)


def _tcp_frame(ethertype=0x0800, proto=6, dst_port=7):
    frame = bytearray(60)
    frame[12:14] = ethertype.to_bytes(2, "big")
    frame[23] = proto
    frame[36:38] = dst_port.to_bytes(2, "big")
    return bytes(frame)


class TestFieldMatch:
    def test_basic_match(self):
        f = FieldMatch(offset=0, width=2, value=0x1234)
        assert f.matches(b"\x12\x34rest")
        assert not f.matches(b"\x12\x35rest")

    def test_mask(self):
        f = FieldMatch(offset=0, width=1, value=0x40, mask=0xF0)
        assert f.matches(b"\x45")
        assert not f.matches(b"\x55")

    def test_short_packet_no_match(self):
        f = FieldMatch(offset=10, width=2, value=0)
        assert not f.matches(b"short")

    def test_invalid_width_rejected(self):
        with pytest.raises(ClassifierError):
            FieldMatch(offset=0, width=3, value=0)


class TestPacketClassifier:
    def test_matching_packet_classified(self):
        clf = tcp_path_classifier(7)
        assert clf.classify(_tcp_frame()) == "tcpip_input_path"

    def test_wrong_ethertype_rejected(self):
        clf = tcp_path_classifier(7)
        assert clf.classify(_tcp_frame(ethertype=0x0806)) is None

    def test_wrong_proto_rejected(self):
        clf = tcp_path_classifier(7)
        assert clf.classify(_tcp_frame(proto=17)) is None

    def test_wrong_port_rejected(self):
        clf = tcp_path_classifier(7)
        assert clf.classify(_tcp_frame(dst_port=80)) is None

    def test_multiple_patterns_share_prefix(self):
        clf = PacketClassifier()
        common = [FieldMatch(12, 2, 0x0800), FieldMatch(23, 1, 6)]
        clf.add_pattern("echo", common + [FieldMatch(36, 2, 7)])
        clf.add_pattern("http", common + [FieldMatch(36, 2, 80)])
        assert clf.classify(_tcp_frame(dst_port=7)) == "echo"
        assert clf.classify(_tcp_frame(dst_port=80)) == "http"

    def test_shared_prefix_costs_one_comparison_per_level(self):
        clf = PacketClassifier()
        common = [FieldMatch(12, 2, 0x0800), FieldMatch(23, 1, 6)]
        for port in range(100, 110):
            clf.add_pattern(f"p{port}", common + [FieldMatch(36, 2, port)])
        clf.comparisons = 0
        clf.classify(_tcp_frame(dst_port=105))
        assert clf.comparisons == 3  # not 10 patterns x 3 fields

    def test_divergent_structure_rejected(self):
        clf = PacketClassifier()
        clf.add_pattern("a", [FieldMatch(12, 2, 0x0800)])
        with pytest.raises(ClassifierError):
            clf.add_pattern("b", [FieldMatch(14, 2, 0x0800)])

    def test_duplicate_names_and_patterns_rejected(self):
        clf = PacketClassifier()
        clf.add_pattern("a", [FieldMatch(12, 2, 1)])
        with pytest.raises(ClassifierError):
            clf.add_pattern("a", [FieldMatch(12, 2, 2)])
        with pytest.raises(ClassifierError):
            clf.add_pattern("b", [FieldMatch(12, 2, 1)])

    def test_empty_pattern_rejected(self):
        with pytest.raises(ClassifierError):
            PacketClassifier().add_pattern("x", [])

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=0, max_size=80))
    def test_never_crashes_on_arbitrary_bytes(self, junk):
        clf = tcp_path_classifier(7)
        result = clf.classify(junk)
        assert result in (None, "tcpip_input_path")

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_only_the_configured_port_matches(self, port):
        clf = tcp_path_classifier(7)
        expected = "tcpip_input_path" if port == 7 else None
        assert clf.classify(_tcp_frame(dst_port=port)) == expected


class TestClassifierModel:
    def test_model_builds_and_costs_microseconds(self):
        """The paper: the best classifiers cost 1-4 µs on this hardware."""
        from repro.arch.simulator import MachineSimulator
        from repro.core.layout import link_order_layout
        from repro.core.program import Program
        from repro.core.walker import EnterEvent, ExitEvent, Walker
        from repro.xkernel.classifier import build_classifier_model

        program = Program()
        program.add(build_classifier_model())
        program.layout(link_order_layout())
        walker = Walker(program, {"clf": 0x700000, "msg": 0x710000})
        events = [
            EnterEvent("packet_classify",
                       conds={"more_levels": 3, "matched": True}),
            ExitEvent("packet_classify"),
        ]
        walk = walker.walk(events)
        steady = MachineSimulator().run_steady_state(walk.trace)
        assert 0.2 < steady.time_us() < 4.0
