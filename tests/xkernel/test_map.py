"""Unit and property tests for the demux map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xkernel.map import Map, MapError


class TestBindResolve:
    def test_roundtrip(self):
        m = Map(16)
        m.bind(b"key", "value")
        assert m.resolve(b"key") == "value"

    def test_duplicate_bind_rejected(self):
        m = Map(16)
        m.bind(b"k", 1)
        with pytest.raises(MapError):
            m.bind(b"k", 2)

    def test_unresolved_key_raises(self):
        with pytest.raises(MapError):
            Map(16).resolve(b"nope")

    def test_resolve_or_none(self):
        m = Map(16)
        assert m.resolve_or_none(b"nope") is None

    def test_unbind(self):
        m = Map(16)
        m.bind(b"k", 1)
        assert m.unbind(b"k") == 1
        assert m.resolve_or_none(b"k") is None
        assert len(m) == 0

    def test_unbind_unbound_raises(self):
        with pytest.raises(MapError):
            Map(16).unbind(b"ghost")

    def test_collision_chains(self):
        m = Map(2)  # tiny table forces collisions
        for i in range(10):
            m.bind(bytes([i]), i)
        for i in range(10):
            assert m.resolve(bytes([i])) == i

    def test_bucket_count_must_be_power_of_two(self):
        with pytest.raises(MapError):
            Map(3)


class TestOneEntryCache:
    def test_repeat_lookup_hits_cache(self):
        m = Map(16)
        m.bind(b"a", 1)
        m.resolve(b"a")
        m.resolve(b"a")
        assert m.stats.cache_hits == 1
        assert m.stats.cache_hit_rate == pytest.approx(0.5)

    def test_alternating_keys_miss_cache(self):
        m = Map(16)
        m.bind(b"a", 1)
        m.bind(b"b", 2)
        for _ in range(3):
            m.resolve(b"a")
            m.resolve(b"b")
        assert m.stats.cache_hits == 0

    def test_unbind_invalidates_cache(self):
        m = Map(16)
        m.bind(b"a", 1)
        m.resolve(b"a")
        m.unbind(b"a")
        m.bind(b"a", 2)
        assert m.resolve(b"a") == 2

    def test_cache_would_hit_probe_is_stat_free(self):
        m = Map(16)
        m.bind(b"a", 1)
        m.resolve(b"a")
        resolves_before = m.stats.resolves
        assert m.cache_would_hit(b"a")
        assert not m.cache_would_hit(b"b")
        assert m.stats.resolves == resolves_before


class TestLazyTraversal:
    def test_traverse_yields_all_bindings(self):
        m = Map(64)
        items = {bytes([i]): i for i in range(20)}
        for k, v in items.items():
            m.bind(k, v)
        assert dict(m.traverse()) == items

    def test_traverse_visits_only_chained_buckets(self):
        m = Map(1024)
        for i in range(8):
            m.bind(bytes([i]), i)
        list(m.traverse())
        assert m.stats.buckets_visited <= 8

    def test_full_scan_visits_every_bucket(self):
        m = Map(1024)
        m.bind(b"x", 1)
        list(m.traverse_full_scan())
        assert m.stats.buckets_visited == 1024

    def test_emptied_buckets_lazily_unlinked(self):
        m = Map(64)
        for i in range(10):
            m.bind(bytes([i]), i)
        for i in range(10):
            m.unbind(bytes([i]))
        assert m.chained_buckets > 0  # lazy: still chained
        assert list(m.traverse()) == []
        assert m.chained_buckets == 0  # cleaned in passing
        assert m.stats.buckets_unlinked > 0

    def test_traversal_after_cleanup_is_cheap(self):
        m = Map(256)
        for i in range(16):
            m.bind(bytes([i]), i)
        for i in range(16):
            m.unbind(bytes([i]))
        list(m.traverse())  # cleanup pass
        m.bind(b"new", 1)
        m.stats.buckets_visited = 0
        assert list(m.traverse()) == [(b"new", 1)]
        assert m.stats.buckets_visited == 1

    def test_interleaved_bind_unbind_traverse(self):
        m = Map(32)
        m.bind(b"a", 1)
        m.bind(b"b", 2)
        m.unbind(b"a")
        assert dict(m.traverse()) == {b"b": 2}
        m.bind(b"c", 3)
        assert dict(m.traverse()) == {b"b": 2, b"c": 3}


class TestMapProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=12), st.integers(), max_size=40
        )
    )
    def test_traverse_equals_contents(self, contents):
        m = Map(16)
        for k, v in contents.items():
            m.bind(k, v)
        assert dict(m.traverse()) == contents
        assert dict(m.traverse_full_scan()) == contents

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.binary(min_size=1, max_size=4)),
            max_size=60,
        )
    )
    def test_model_equivalence_under_mixed_operations(self, ops):
        """The map behaves like a dict under arbitrary bind/unbind
        sequences, with traversal always consistent."""
        m = Map(8)
        model = {}
        for is_bind, key in ops:
            if is_bind:
                if key in model:
                    with pytest.raises(MapError):
                        m.bind(key, 0)
                else:
                    model[key] = len(model)
                    m.bind(key, model[key])
            else:
                if key in model:
                    assert m.unbind(key) == model.pop(key)
                else:
                    with pytest.raises(MapError):
                        m.unbind(key)
            assert len(m) == len(model)
        assert dict(m.traverse()) == model

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.binary(min_size=1, max_size=8), min_size=1, max_size=30))
    def test_resolve_after_traversal_cleanup(self, keys):
        m = Map(16)
        for i, k in enumerate(sorted(keys)):
            m.bind(k, i)
        list(m.traverse())
        for i, k in enumerate(sorted(keys)):
            assert m.resolve(k) == i
