"""Property tests: the pluggable demux-cache schemes under churn.

Every scheme must be a *transparent* front end: whatever caching policy
sits in front of the backing hash table, resolved bindings are identical
(the one-entry vs no-cache agreement the paper's inlining argument rests
on), stale entries never survive an unbind, and the ``MapStats``
accounting identities hold over arbitrary bind/unbind/resolve sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xkernel.map import (
    HASH_PROBE_TRIPS,
    SCHEME_SPECS,
    Map,
    MapError,
    fnv32,
    make_scheme,
)

#: a small key universe so sequences revisit and collide
KEYS = [bytes([0x40 + k]) * 8 for k in range(10)]

OPS = st.lists(
    st.tuples(
        st.sampled_from(["bind", "unbind", "resolve", "would_hit"]),
        st.integers(min_value=0, max_value=len(KEYS) - 1),
    ),
    max_size=120,
)


def _stats_dict(m: Map) -> dict:
    return dict(vars(m.stats))


class TestSchemeAgreementUnderChurn:
    @settings(max_examples=80, deadline=None)
    @given(OPS)
    def test_all_schemes_agree_with_the_model(self, ops):
        """Every scheme resolves exactly the model's bindings, and the
        stats identities hold: resolves = hits + installs + not-found,
        evictions <= installs, invalidations <= unbinds."""
        maps = {spec: Map(8, scheme=spec) for spec in SCHEME_SPECS}
        model = {}
        serial = 0
        not_found = 0
        for op, k in ops:
            key = KEYS[k]
            if op == "bind":
                if key in model:
                    for m in maps.values():
                        with pytest.raises(MapError):
                            m.bind(key, serial)
                else:
                    model[key] = serial
                    for m in maps.values():
                        m.bind(key, serial)
                serial += 1
            elif op == "unbind":
                if key not in model:
                    for m in maps.values():
                        with pytest.raises(MapError):
                            m.unbind(key)
                else:
                    expected = model.pop(key)
                    for m in maps.values():
                        assert m.unbind(key) == expected
            elif op == "resolve":
                expected = model.get(key)
                not_found += expected is None
                for m in maps.values():
                    assert m.resolve_or_none(key) == expected
                    assert m.last.found == (expected is not None)
            else:  # would_hit: stat-free, and an honest hit predictor
                for m in maps.values():
                    before = _stats_dict(m)
                    predicted = m.cache_would_hit(key)
                    assert _stats_dict(m) == before
                    if key not in model:
                        # unbinds invalidate, so caches never hold
                        # unbound keys
                        assert not predicted
                    else:
                        m.resolve(key)
                        assert m.last.hit == predicted

        for spec, m in maps.items():
            s = m.stats
            assert s.scheme == make_scheme(spec).name
            assert s.resolves == s.cache_hits + s.installs + not_found
            assert s.evictions <= s.installs
            assert s.invalidations <= s.unbinds
            assert s.probe_compares >= s.cache_hits
            assert len(m) == len(model)
            assert dict(m.traverse_full_scan()) == model

        # the paper's argument in miniature: the inlined one-entry test
        # and the uncached walk see the same bindings, always
        assert dict(maps["one-entry"].traverse_full_scan()) == dict(
            maps["none"].traverse_full_scan()
        )

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(SCHEME_SPECS), st.integers(0, len(KEYS) - 1))
    def test_no_stale_hits_after_rebind(self, spec, k):
        """An unbind must invalidate; a later rebind serves the new value."""
        m = Map(8, scheme=spec)
        key = KEYS[k]
        m.bind(key, "old")
        assert m.resolve(key) == "old"
        assert m.resolve(key) == "old"  # now (maybe) cached
        m.unbind(key)
        assert m.resolve_or_none(key) is None
        assert not m.last.hit
        m.bind(key, "new")
        assert m.resolve(key) == "new"


class TestSchemeSemantics:
    def test_one_entry_remembers_exactly_one(self):
        m = Map(8, scheme="one-entry")
        m.bind(KEYS[0], 0)
        m.bind(KEYS[1], 1)
        m.resolve(KEYS[0])
        m.resolve(KEYS[0])
        assert m.last.hit
        m.resolve(KEYS[1])
        assert not m.last.hit  # displaced by KEYS[0]? no: misses, installs
        m.resolve(KEYS[0])
        assert not m.last.hit  # KEYS[1] displaced it
        assert m.stats.evictions == 2

    def test_lru_capacity_and_eviction_order(self):
        m = Map(8, scheme="lru:2")
        for k in range(3):
            m.bind(KEYS[k], k)
        m.resolve(KEYS[0])
        m.resolve(KEYS[1])  # cache: [0, 1]
        m.resolve(KEYS[0])  # hit, 0 becomes MRU
        assert m.last.hit
        m.resolve(KEYS[2])  # evicts 1 (LRU), not 0
        assert m.stats.evictions == 1
        m.resolve(KEYS[0])
        assert m.last.hit
        m.resolve(KEYS[1])
        assert not m.last.hit

    def test_direct_mapped_conflicts_thrash(self):
        scheme = make_scheme("direct:16")
        by_slot = {}
        conflict = None
        for k in range(256):
            key = bytes([k]) * 8
            slot = fnv32(key) % 16
            if slot in by_slot:
                conflict = (by_slot[slot], key)
                break
            by_slot[slot] = key
        assert conflict is not None
        a, b = conflict
        m = Map(8, scheme=scheme)
        m.bind(a, "a")
        m.bind(b, "b")
        m.resolve(a)
        m.resolve(b)  # evicts a from their shared slot
        m.resolve(a)
        assert not m.last.hit
        assert m.stats.evictions >= 1

    def test_set_associative_within_one_set_is_lru(self):
        m = Map(8, scheme="assoc:1x2")
        for k in range(3):
            m.bind(KEYS[k], k)
        m.resolve(KEYS[0])
        m.resolve(KEYS[1])
        m.resolve(KEYS[2])  # evicts KEYS[0]
        m.resolve(KEYS[1])
        assert m.last.hit
        m.resolve(KEYS[0])
        assert not m.last.hit

    def test_no_cache_never_hits(self):
        m = Map(8, scheme="none")
        m.bind(KEYS[0], 0)
        for _ in range(5):
            assert m.resolve(KEYS[0]) == 0
            assert not m.last.hit
        assert m.stats.cache_hits == 0
        assert m.stats.probe_compares == 0


class TestCostModelInputs:
    def test_probe_trips_charges_hash_indexing(self):
        assert make_scheme("lru:4").probe_trips(2, 3) == 6
        assert make_scheme("one-entry").probe_trips(1, 3) == 3
        assert make_scheme("direct:16").probe_trips(1, 3) == 3 + HASH_PROBE_TRIPS
        assert make_scheme("assoc:4x2").probe_trips(2, 3) == 6 + HASH_PROBE_TRIPS

    def test_make_scheme_round_trips_names(self):
        for spec in SCHEME_SPECS:
            assert make_scheme(spec).name == spec
        assert make_scheme(None).name == "one-entry"
        scheme = make_scheme("lru:7")
        assert make_scheme(scheme) is scheme

    @pytest.mark.parametrize(
        "bad", ["bogus", "lru:x", "lru:0", "direct:0", "assoc:2", "assoc:0x1"]
    )
    def test_make_scheme_rejects_malformed_specs(self, bad):
        with pytest.raises(MapError):
            make_scheme(bad)
