"""Unit tests for messages and the interrupt-side message pool."""

import pytest

from repro.xkernel.alloc import SimAllocator
from repro.xkernel.message import Message, MessageError, MessagePool


@pytest.fixture
def alloc():
    return SimAllocator()


class TestMessage:
    def test_push_prepends(self, alloc):
        msg = Message(alloc, b"payload")
        msg.push(b"HDR")
        assert msg.bytes() == b"HDRpayload"

    def test_pop_strips_header(self, alloc):
        msg = Message(alloc, b"HDRpayload")
        assert msg.pop(3) == b"HDR"
        assert msg.bytes() == b"payload"

    def test_push_pop_roundtrip(self, alloc):
        msg = Message(alloc, b"data")
        for layer in (b"tcp.", b"ip..", b"eth."):
            msg.push(layer)
        assert msg.pop(4) == b"eth."
        assert msg.pop(4) == b"ip.."
        assert msg.pop(4) == b"tcp."
        assert msg.bytes() == b"data"

    def test_peek_does_not_strip(self, alloc):
        msg = Message(alloc, b"abcdef")
        assert msg.peek(3) == b"abc"
        assert len(msg) == 6

    def test_truncate(self, alloc):
        msg = Message(alloc, b"abcdef")
        msg.truncate(2)
        assert msg.bytes() == b"ab"

    def test_append(self, alloc):
        msg = Message(alloc, b"ab")
        msg.append(b"cd")
        assert msg.bytes() == b"abcd"

    def test_headroom_exhaustion(self, alloc):
        msg = Message(alloc, b"", headroom=4)
        with pytest.raises(MessageError):
            msg.push(b"12345")

    def test_over_pop_rejected(self, alloc):
        msg = Message(alloc, b"ab")
        with pytest.raises(MessageError):
            msg.pop(3)

    def test_data_addr_tracks_head(self, alloc):
        msg = Message(alloc, b"xy")
        before = msg.data_addr
        msg.push(b"h")
        assert msg.data_addr == before - 1

    def test_refcounting_frees_once(self, alloc):
        msg = Message(alloc, b"x")
        msg.add_ref()
        assert not msg.destroy()  # one reference remains
        assert msg.alive
        assert msg.destroy()  # actually freed
        assert not msg.alive
        assert not alloc.is_live(msg.sim_addr)

    def test_destroy_dead_message_rejected(self, alloc):
        msg = Message(alloc, b"x")
        msg.destroy()
        with pytest.raises(MessageError):
            msg.destroy()


class TestMessagePool:
    def test_get_hands_out_preallocated(self, alloc):
        pool = MessagePool(alloc, size=2)
        assert pool.available == 2
        pool.get()
        assert pool.available == 1

    def test_exhausted_pool_allocates(self, alloc):
        pool = MessagePool(alloc, size=1)
        pool.get()
        msg = pool.get()
        assert msg is not None

    def test_refresh_short_circuits_sole_reference(self, alloc):
        pool = MessagePool(alloc, size=1, short_circuit=True)
        msg = pool.get()
        allocs_before = alloc.alloc_count
        back = pool.refresh(msg)
        assert back is msg  # reused in place
        assert pool.short_circuited == 1
        assert alloc.alloc_count == allocs_before  # no free/malloc pair

    def test_refresh_with_extra_reference_reallocates(self, alloc):
        pool = MessagePool(alloc, size=1, short_circuit=True)
        msg = pool.get()
        msg.add_ref()  # somebody kept a reference
        back = pool.refresh(msg)
        assert back is not msg
        assert pool.short_circuited == 0
        assert msg.alive  # the outstanding reference keeps it alive

    def test_refresh_without_optimization_always_reallocates(self, alloc):
        pool = MessagePool(alloc, size=1, short_circuit=False)
        msg = pool.get()
        back = pool.refresh(msg)
        assert back is not msg
        assert not msg.alive

    def test_short_circuit_keeps_address_warm(self, alloc):
        pool = MessagePool(alloc, size=1, short_circuit=True)
        msg = pool.get()
        addr = msg.sim_addr
        pool.refresh(msg)
        assert pool.get().sim_addr == addr
