"""Property-based tests on message buffers and the allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xkernel.alloc import SimAllocator
from repro.xkernel.message import Message, MessageError, MessagePool


class TestMessageProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=20), max_size=8),
           st.binary(max_size=64))
    def test_push_pop_is_a_stack(self, headers, payload):
        """Pushing N headers then popping them returns them in reverse."""
        msg = Message(SimAllocator(), payload)
        for header in headers:
            msg.push(header)
        for header in reversed(headers):
            assert msg.pop(len(header)) == header
        assert msg.bytes() == payload

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=128), st.integers(min_value=0, max_value=128))
    def test_truncate_is_prefix(self, payload, keep):
        msg = Message(SimAllocator(), payload)
        if keep <= len(payload):
            msg.truncate(keep)
            assert msg.bytes() == payload[:keep]
        else:
            with pytest.raises(MessageError):
                msg.truncate(keep)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["push", "pop", "append"]),
                    max_size=30))
    def test_length_accounting_never_corrupts(self, ops):
        """Whatever sequence of operations runs, len() matches contents."""
        msg = Message(SimAllocator(), b"seed")
        for op in ops:
            try:
                if op == "push":
                    msg.push(b"HH")
                elif op == "pop":
                    msg.pop(2)
                else:
                    msg.append(b"tt")
            except MessageError:
                pass  # bounds violations must raise, not corrupt
            assert len(msg) == len(msg.bytes())

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_refcount_conservation(self, extra_refs):
        alloc = SimAllocator()
        msg = Message(alloc, b"x")
        for _ in range(extra_refs):
            msg.add_ref()
        freed = [msg.destroy() for _ in range(extra_refs + 1)]
        assert freed.count(True) == 1
        assert freed[-1] is True
        assert not alloc.is_live(msg.sim_addr)


class TestPoolProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=30))
    def test_pool_never_leaks(self, size, cycles):
        alloc = SimAllocator()
        pool = MessagePool(alloc, size=size)
        live_before = alloc.live_bytes
        for _ in range(cycles):
            msg = pool.get()
            msg.set_payload(b"data")
            pool.refresh(msg)
        assert pool.available == size
        assert alloc.live_bytes == live_before

    @settings(max_examples=30, deadline=None)
    @given(st.booleans())
    def test_refresh_always_restocks(self, short_circuit):
        alloc = SimAllocator()
        pool = MessagePool(alloc, size=2, short_circuit=short_circuit)
        msg = pool.get()
        assert pool.available == 1
        pool.refresh(msg)
        assert pool.available == 2


class TestAllocatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=512),
                    min_size=1, max_size=40))
    def test_live_allocations_never_overlap(self, sizes):
        alloc = SimAllocator()
        regions = []
        for size in sizes:
            addr = alloc.malloc(size)
            regions.append((addr, addr + size))
        regions.sort()
        for (s1, e1), (s2, _) in zip(regions, regions[1:]):
            assert s2 >= e1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=256)),
                    max_size=60))
    def test_alloc_free_sequences_consistent(self, ops):
        alloc = SimAllocator()
        live = []
        for do_alloc, size in ops:
            if do_alloc or not live:
                live.append(alloc.malloc(size))
            else:
                alloc.free(live.pop())
        assert all(alloc.is_live(a) for a in live)
