"""Unit tests for the event manager and process layer."""

import pytest

from repro.xkernel.alloc import SimAllocator
from repro.xkernel.event import EventError, EventManager
from repro.xkernel.process import (
    Continuation,
    ProcessError,
    Scheduler,
    Semaphore,
    StackPool,
)


class TestEventManager:
    def test_fires_in_time_order(self):
        ev = EventManager()
        fired = []
        ev.schedule(20, lambda: fired.append("b"))
        ev.schedule(10, lambda: fired.append("a"))
        ev.advance_to(30)
        assert fired == ["a", "b"]

    def test_not_due_events_stay_pending(self):
        ev = EventManager()
        ev.schedule(100, lambda: None)
        assert ev.advance_to(50) == 0
        assert ev.pending == 1

    def test_cancelled_event_does_not_fire(self):
        ev = EventManager()
        fired = []
        handle = ev.schedule(10, lambda: fired.append(1))
        ev.cancel(handle)
        ev.advance_to(20)
        assert fired == []

    def test_clock_moves_forward_only(self):
        ev = EventManager()
        ev.advance_to(10)
        with pytest.raises(EventError):
            ev.advance_to(5)

    def test_negative_delay_rejected(self):
        with pytest.raises(EventError):
            EventManager().schedule(-1, lambda: None)

    def test_handler_sees_fire_time(self):
        ev = EventManager()
        seen = []
        ev.schedule(15, lambda: seen.append(ev.now_us))
        ev.advance_to(100)
        assert seen == [15]

    def test_next_fire_time_skips_cancelled(self):
        ev = EventManager()
        first = ev.schedule(5, lambda: None)
        ev.schedule(10, lambda: None)
        ev.cancel(first)
        assert ev.next_fire_time() == 10

    def test_rescheduling_from_handler(self):
        ev = EventManager()
        fired = []

        def handler():
            fired.append(ev.now_us)
            if len(fired) < 3:
                ev.schedule(10, handler)

        ev.schedule(10, handler)
        ev.advance_to(100)
        assert fired == [10, 20, 30]


class TestStackPool:
    def test_lifo_reuse(self):
        pool = StackPool(SimAllocator(), prealloc=2)
        s1 = pool.attach()
        pool.release(s1)
        s2 = pool.attach()
        assert s2 is s1
        assert pool.warm_attaches == 1

    def test_grows_on_demand(self):
        pool = StackPool(SimAllocator(), prealloc=1)
        a = pool.attach()
        b = pool.attach()
        assert a is not b

    def test_double_release_rejected(self):
        pool = StackPool(SimAllocator())
        s = pool.attach()
        pool.release(s)
        with pytest.raises(ProcessError):
            pool.release(s)

    def test_stack_top_is_high_end(self):
        pool = StackPool(SimAllocator())
        s = pool.attach()
        assert s.top == s.sim_addr + s.size


class TestSemaphore:
    def test_wait_succeeds_with_count(self):
        sched = Scheduler(SimAllocator())
        sem = Semaphore(sched, count=1)
        assert sem.wait_or_block(Continuation(lambda: None))
        assert sem.count == 0

    def test_wait_blocks_without_count(self):
        sched = Scheduler(SimAllocator())
        sem = Semaphore(sched)
        resumed = []
        assert not sem.wait_or_block(Continuation(lambda: resumed.append(1)))
        assert sem.waiting == 1
        sem.signal()
        sched.run_pending()
        assert resumed == [1]

    def test_signal_without_waiter_banks_count(self):
        sched = Scheduler(SimAllocator())
        sem = Semaphore(sched)
        sem.signal()
        assert sem.count == 1
        assert sem.wait_or_block(Continuation(lambda: None))


class TestScheduler:
    def test_spawn_runs_thread_body(self):
        sched = Scheduler(SimAllocator())
        ran = []
        thread = sched.spawn(lambda t: ran.append(t.name), name="worker")
        sched.run_pending()
        assert ran == ["worker"]
        assert thread.state == "done"

    def test_work_items_reuse_warm_stack(self):
        sched = Scheduler(SimAllocator())
        stacks = []
        for _ in range(3):
            sched.call_soon(lambda: stacks.append(sched.current_stack))
            sched.run_pending()
        assert stacks[0] is stacks[1] is stacks[2]

    def test_continuation_counts_context_switch(self):
        sched = Scheduler(SimAllocator())
        sched.schedule_continuation(Continuation(lambda: None))
        sched.run_pending()
        assert sched.context_switches == 1

    def test_idle_flag(self):
        sched = Scheduler(SimAllocator())
        assert sched.idle
        sched.call_soon(lambda: None)
        assert not sched.idle
        sched.run_pending()
        assert sched.idle
